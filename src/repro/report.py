"""Command-line testability report.

Usage::

    python -m repro.report iir2            # one suite design
    python -m repro.report --list          # available designs
    python -m repro.report iir2 --latency-slack 2.0 --width 4
    python -m repro.report iir2 --jobs 4 --metrics metrics.json

Prints the full testability picture for a behavior: CDFG structure,
conventional synthesis result, S-graph analysis, the cost of every DFT
strategy the library implements (gate-level partial scan, loop-aware
[33], boundary [24], RTL mixed scan, k-level test points, BIST roles
and sessions), so a user can compare options on their design in one
shot.

The report runs as a :mod:`repro.flow` flow: each section is a cached
stage (repeated runs are cache-warm) and independent DFT analyses fan
out across worker processes under ``--jobs``.
"""

from __future__ import annotations

import argparse
import sys

from repro.cdfg import suite
from repro.flow import Flow, FlowCache, Runner


def _conventional(cdfg, slack):
    from repro.cdfg.analysis import critical_path_length
    from repro import hls

    latency = max(
        critical_path_length(cdfg),
        int(slack * critical_path_length(cdfg)),
    )
    alloc = hls.allocate_for_latency(cdfg, latency)
    sched = hls.list_schedule(cdfg, alloc)
    fub = hls.bind_functional_units(cdfg, sched, alloc)
    regs = hls.assign_registers_left_edge(cdfg, sched)
    return hls.build_datapath(cdfg, sched, fub, regs), alloc, latency


def _design(name, width):
    return suite.standard_suite(width=width)[name]


# -- report sections (flow stages; each is pure and self-contained) ------

def section_behavior(name: str, slack: float, width: int) -> str:
    from repro.cdfg.analysis import cdfg_loops, critical_path_length
    from repro import sgraph
    from repro.hls.estimate import area_estimate

    cdfg = _design(name, width)
    loops = cdfg_loops(cdfg, bound=500)
    text = [
        f"testability report: {name} ({width}-bit)\n",
        "=" * 60 + "\n",
        f"behavior: {len(cdfg)} operations, {len(cdfg.variables)} "
        f"variables, kinds {sorted(cdfg.kinds())}\n",
        f"critical path: {critical_path_length(cdfg)} steps; "
        f"CDFG loops: {len(loops)}\n",
    ]
    dp, _alloc, latency = _conventional(cdfg, slack)
    g = sgraph.build_sgraph(dp)
    cost = sgraph.estimate_cost(g)
    text.append(
        f"\nconventional synthesis @ latency {latency}: "
        f"{len(dp.registers)} registers, {len(dp.units)} units, "
        f"area {area_estimate(dp)['total']:.0f}\n"
    )
    text.append(f"S-graph: {cost}\n")
    return "".join(text)


def section_gate_scan(name: str, slack: float, width: int) -> str:
    from repro import scan

    dp, *_ = _conventional(_design(name, width), slack)
    rep = scan.gate_level_partial_scan(dp)
    return (
        f"gate-level MFVS:      {rep.scan_registers} scan regs "
        f"({rep.scan_bits} bits), area +{rep.area_overhead_percent:.1f}%\n"
    )


def section_loop_aware(name: str, slack: float, width: int) -> str:
    from repro.cdfg.analysis import cdfg_loops
    from repro import scan

    cdfg = _design(name, width)
    loops = cdfg_loops(cdfg, bound=500)
    if not loops:
        return "loop-aware [33]:      0 scan regs (behavior is loop-free)\n"
    _dp, alloc, latency = _conventional(cdfg, slack)
    dp2, _plan = scan.loop_aware_synthesis(cdfg, alloc, num_steps=latency)
    bits = sum(r.width for r in dp2.scan_registers())
    return (
        f"loop-aware [33]:      {len(dp2.scan_registers())} scan regs "
        f"({bits} bits)\n"
    )


def section_rtl_mixed(name: str, slack: float, width: int) -> str:
    from repro import scan

    dp, *_ = _conventional(_design(name, width), slack)
    mixed = scan.rtl_partial_scan(dp)
    return (
        f"RTL mixed scan [35]:  {len(mixed.scanned_registers)} regs + "
        f"{len(mixed.transparent_units)} transparent units "
        f"({mixed.scan_bits} bits)\n"
    )


def section_test_points(name: str, slack: float, width: int) -> str:
    from repro import rtl

    dp, *_ = _conventional(_design(name, width), slack)
    lines = []
    for k in (0, 1):
        tps = rtl.insert_k_level_test_points(dp, k=k)
        lines.append(f"test points k={k} [15]: {len(tps)} insertions\n")
    return "".join(lines)


def section_bist(name: str, slack: float, width: int) -> str:
    from repro import bist
    from repro.bist.sessions import path_based_sessions

    dp, _alloc, _lat = _conventional(_design(name, width), slack)
    cfg, envs = bist.assign_test_roles(dp)
    sessions = bist.schedule_sessions(envs)
    paths = path_based_sessions(dp)
    return (
        f"BIST roles [32]:      {cfg.converted_registers} converted "
        f"registers, {cfg.count(bist.TestRole.CBILBO)} CBILBOs\n"
        f"BIST sessions:        per-module {len(sessions)}, "
        f"path-based [20] {len(paths)}\n"
    )


def render_report(behavior, gate_scan, loop_aware, rtl_mixed,
                  test_points, bist_text) -> str:
    return "".join([
        behavior,
        "\nDFT options\n" + "-" * 60 + "\n",
        gate_scan, loop_aware, rtl_mixed, test_points, bist_text,
    ])


_SECTIONS = [
    ("behavior", section_behavior,
     ("repro.cdfg", "repro.hls", "repro.sgraph")),
    ("gate_scan", section_gate_scan,
     ("repro.cdfg", "repro.hls", "repro.scan", "repro.sgraph")),
    ("loop_aware", section_loop_aware,
     ("repro.cdfg", "repro.hls", "repro.scan")),
    ("rtl_mixed", section_rtl_mixed,
     ("repro.cdfg", "repro.hls", "repro.scan")),
    ("test_points", section_test_points,
     ("repro.cdfg", "repro.hls", "repro.rtl")),
    ("bist_text", section_bist,
     ("repro.cdfg", "repro.hls", "repro.bist")),
]


def build_report_flow(design: str, slack: float = 1.5,
                      width: int = 8) -> Flow:
    """The testability-report pipeline as a flow DAG."""
    params = {"name": design, "slack": slack, "width": width}
    f = Flow("report")
    for artifact, fn, deps in _SECTIONS:
        f.stage(artifact, fn, outputs=(artifact,), params=params,
                code_deps=deps)
    f.stage(
        "render", render_report,
        inputs=("behavior", "gate_scan", "loop_aware", "rtl_mixed",
                "test_points", "bist_text"),
        outputs=("text",),
    )
    return f


def export_verilog(name: str, slack: float, width: int) -> str:
    from repro.gatelevel import datapath_to_verilog

    dp, _alloc, _lat = _conventional(_design(name, width), slack)
    return datapath_to_verilog(dp)


def export_dot(name: str, slack: float, width: int) -> str:
    from repro.cdfg.dot import datapath_to_dot

    dp, _alloc, _lat = _conventional(_design(name, width), slack)
    return datapath_to_dot(dp)


def build_artifact_flow(design: str, slack: float, width: int) -> Flow:
    params = {"name": design, "slack": slack, "width": width}
    f = Flow("report_artifacts")
    f.stage("verilog", export_verilog, outputs=("verilog",),
            params=params,
            code_deps=("repro.cdfg", "repro.hls", "repro.gatelevel"))
    f.stage("dot", export_dot, outputs=("dot",), params=params,
            code_deps=("repro.cdfg", "repro.hls"))
    return f


def _runner(cache: bool) -> Runner:
    return Runner(cache=FlowCache() if cache else None)


def report(name: str, slack: float = 1.5, width: int = 8,
           out=None, jobs: int = 1, cache: bool = False,
           metrics_path: str | None = None) -> None:
    if out is None:
        out = sys.stdout  # bound at call time so capture tools work
    if name not in suite.standard_suite(width=width):
        raise SystemExit(
            f"unknown design {name!r}; use --list to see options"
        )
    result = _runner(cache).run(
        build_report_flow(name, slack, width),
        jobs=jobs, metrics_path=metrics_path,
    )
    out.write(result["text"])


def export_artifacts(
    name: str,
    slack: float,
    width: int,
    verilog_path: str | None,
    dot_path: str | None,
    jobs: int = 1,
    cache: bool = False,
) -> None:
    """Write Verilog / DOT renderings of the conventional data path.

    The renderings are produced by (cached) flow stages, so repeated
    exports of an unchanged design are cache-warm.
    """
    result = _runner(cache).run(
        build_artifact_flow(name, slack, width), jobs=jobs
    )
    if verilog_path:
        with open(verilog_path, "w") as fh:
            fh.write(result["verilog"])
        print(f"wrote {verilog_path}")
    if dot_path:
        with open(dot_path, "w") as fh:
            fh.write(result["dot"])
        print(f"wrote {dot_path}")


def export_test_vectors(
    name: str, slack: float, width: int, vectors_path: str,
    atpg_backend: str | None = None, predrop: int | None = None,
    shards: int | None = None,
) -> None:
    """Generate a full-scan ATPG test set and write it as a vector file.

    ``atpg_backend`` / ``predrop`` / ``shards`` forward to
    :func:`repro.gatelevel.test_generation.generate_tests`; the vector
    file is identical for every combination.
    """
    from repro.gatelevel import (
        expand_datapath,
        generate_tests,
        write_vectors,
    )

    cdfg = _design(name, width)
    dp, _alloc, _lat = _conventional(cdfg, slack)
    dp.mark_scan(*[r.name for r in dp.registers])
    nl, _ = expand_datapath(dp)
    ts = generate_tests(nl, atpg_backend=atpg_backend, predrop=predrop,
                        shards=shards)
    with open(vectors_path, "w") as fh:
        fh.write(write_vectors(nl, ts.vectors))
    print(
        f"wrote {vectors_path}: {len(ts.vectors)} vectors, "
        f"coverage {ts.coverage:.3f}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description="Print a testability report for a suite design.",
    )
    parser.add_argument("design", nargs="?", help="suite design name")
    parser.add_argument("--list", action="store_true",
                        help="list available designs")
    parser.add_argument("--latency-slack", type=float, default=1.5)
    parser.add_argument("--width", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the report flow")
    parser.add_argument("--metrics", metavar="FILE",
                        help="dump per-stage flow metrics as JSON")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every report section")
    parser.add_argument("--verilog", metavar="FILE",
                        help="also export the data path as RTL Verilog")
    parser.add_argument("--dot", metavar="FILE",
                        help="also export the data path as Graphviz DOT")
    parser.add_argument("--vectors", metavar="FILE",
                        help="also run full-scan ATPG and export the "
                             "test vectors")
    parser.add_argument("--atpg-backend", choices=["event", "reference"],
                        help="PODEM engine for --vectors "
                             "(default: event, or REPRO_ATPG_BACKEND)")
    parser.add_argument("--predrop", type=int, metavar="N",
                        help="random patterns simulated before "
                             "deterministic ATPG for --vectors "
                             "(0 disables; default 64, or "
                             "REPRO_ATPG_PREDROP)")
    parser.add_argument("--atpg-shards", type=int, metavar="N",
                        help="worker processes for the deterministic "
                             "ATPG residue (default 1, or "
                             "REPRO_ATPG_SHARDS)")
    args = parser.parse_args(argv)
    if args.list or not args.design:
        for name in sorted(suite.standard_suite()):
            print(name)
        return 0
    cache = not args.no_cache
    report(args.design, slack=args.latency_slack, width=args.width,
           jobs=args.jobs, cache=cache, metrics_path=args.metrics)
    if args.verilog or args.dot:
        export_artifacts(
            args.design, args.latency_slack, args.width,
            args.verilog, args.dot, jobs=args.jobs, cache=cache,
        )
    if args.vectors:
        export_test_vectors(
            args.design, args.latency_slack, args.width, args.vectors,
            atpg_backend=args.atpg_backend, predrop=args.predrop,
            shards=args.atpg_shards,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
