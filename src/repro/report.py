"""Command-line testability report.

Usage::

    python -m repro.report iir2            # one suite design
    python -m repro.report --list          # available designs
    python -m repro.report iir2 --latency-slack 2.0 --width 4

Prints the full testability picture for a behavior: CDFG structure,
conventional synthesis result, S-graph analysis, the cost of every DFT
strategy the library implements (gate-level partial scan, loop-aware
[33], boundary [24], RTL mixed scan, k-level test points, BIST roles
and sessions), so a user can compare options on their design in one
shot.
"""

from __future__ import annotations

import argparse
import sys

from repro.cdfg import suite
from repro.cdfg.analysis import cdfg_loops, critical_path_length
from repro import bist, hls, rtl, scan, sgraph
from repro.bist.sessions import path_based_sessions
from repro.hls.estimate import area_estimate


def _conventional(cdfg, slack):
    latency = max(
        critical_path_length(cdfg),
        int(slack * critical_path_length(cdfg)),
    )
    alloc = hls.allocate_for_latency(cdfg, latency)
    sched = hls.list_schedule(cdfg, alloc)
    fub = hls.bind_functional_units(cdfg, sched, alloc)
    regs = hls.assign_registers_left_edge(cdfg, sched)
    return hls.build_datapath(cdfg, sched, fub, regs), alloc, latency


def report(name: str, slack: float = 1.5, width: int = 8,
           out=None) -> None:
    if out is None:
        out = sys.stdout  # bound at call time so capture tools work
    designs = suite.standard_suite(width=width)
    if name not in designs:
        raise SystemExit(
            f"unknown design {name!r}; use --list to see options"
        )
    cdfg = designs[name]
    w = out.write

    w(f"testability report: {name} ({width}-bit)\n")
    w("=" * 60 + "\n")
    loops = cdfg_loops(cdfg, bound=500)
    w(f"behavior: {len(cdfg)} operations, {len(cdfg.variables)} "
      f"variables, kinds {sorted(cdfg.kinds())}\n")
    w(f"critical path: {critical_path_length(cdfg)} steps; "
      f"CDFG loops: {len(loops)}\n")

    dp, alloc, latency = _conventional(cdfg, slack)
    g = sgraph.build_sgraph(dp)
    cost = sgraph.estimate_cost(g)
    w(f"\nconventional synthesis @ latency {latency}: "
      f"{len(dp.registers)} registers, {len(dp.units)} units, "
      f"area {area_estimate(dp)['total']:.0f}\n")
    w(f"S-graph: {cost}\n")

    w("\nDFT options\n" + "-" * 60 + "\n")

    dp1, *_ = _conventional(cdfg, slack)
    rep = scan.gate_level_partial_scan(dp1)
    w(f"gate-level MFVS:      {rep.scan_registers} scan regs "
      f"({rep.scan_bits} bits), area +{rep.area_overhead_percent:.1f}%\n")

    if loops:
        dp2, _plan = scan.loop_aware_synthesis(
            cdfg, alloc, num_steps=latency
        )
        bits = sum(r.width for r in dp2.scan_registers())
        w(f"loop-aware [33]:      {len(dp2.scan_registers())} scan regs "
          f"({bits} bits)\n")
    else:
        w("loop-aware [33]:      0 scan regs (behavior is loop-free)\n")

    dp3, *_ = _conventional(cdfg, slack)
    mixed = scan.rtl_partial_scan(dp3)
    w(f"RTL mixed scan [35]:  {len(mixed.scanned_registers)} regs + "
      f"{len(mixed.transparent_units)} transparent units "
      f"({mixed.scan_bits} bits)\n")

    dp4, *_ = _conventional(cdfg, slack)
    for k in (0, 1):
        tps = rtl.insert_k_level_test_points(dp4, k=k)
        w(f"test points k={k} [15]: {len(tps)} insertions\n")

    dp5, alloc5, _ = _conventional(cdfg, slack)
    cfg, envs = bist.assign_test_roles(dp5)
    sessions = bist.schedule_sessions(envs)
    paths = path_based_sessions(dp5)
    w(f"BIST roles [32]:      {cfg.converted_registers} converted "
      f"registers, {cfg.count(bist.TestRole.CBILBO)} CBILBOs\n")
    w(f"BIST sessions:        per-module {len(sessions)}, "
      f"path-based [20] {len(paths)}\n")


def export_artifacts(
    name: str,
    slack: float,
    width: int,
    verilog_path: str | None,
    dot_path: str | None,
) -> None:
    """Write Verilog / DOT renderings of the conventional data path."""
    from repro.cdfg.dot import datapath_to_dot
    from repro.gatelevel import datapath_to_verilog

    cdfg = suite.standard_suite(width=width)[name]
    dp, _alloc, _lat = _conventional(cdfg, slack)
    if verilog_path:
        with open(verilog_path, "w") as fh:
            fh.write(datapath_to_verilog(dp))
        print(f"wrote {verilog_path}")
    if dot_path:
        with open(dot_path, "w") as fh:
            fh.write(datapath_to_dot(dp))
        print(f"wrote {dot_path}")


def export_test_vectors(
    name: str, slack: float, width: int, vectors_path: str
) -> None:
    """Generate a full-scan ATPG test set and write it as a vector file."""
    from repro.gatelevel import (
        expand_datapath,
        generate_tests,
        write_vectors,
    )

    cdfg = suite.standard_suite(width=width)[name]
    dp, _alloc, _lat = _conventional(cdfg, slack)
    dp.mark_scan(*[r.name for r in dp.registers])
    nl, _ = expand_datapath(dp)
    ts = generate_tests(nl)
    with open(vectors_path, "w") as fh:
        fh.write(write_vectors(nl, ts.vectors))
    print(
        f"wrote {vectors_path}: {len(ts.vectors)} vectors, "
        f"coverage {ts.coverage:.3f}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description="Print a testability report for a suite design.",
    )
    parser.add_argument("design", nargs="?", help="suite design name")
    parser.add_argument("--list", action="store_true",
                        help="list available designs")
    parser.add_argument("--latency-slack", type=float, default=1.5)
    parser.add_argument("--width", type=int, default=8)
    parser.add_argument("--verilog", metavar="FILE",
                        help="also export the data path as RTL Verilog")
    parser.add_argument("--dot", metavar="FILE",
                        help="also export the data path as Graphviz DOT")
    parser.add_argument("--vectors", metavar="FILE",
                        help="also run full-scan ATPG and export the "
                             "test vectors")
    args = parser.parse_args(argv)
    if args.list or not args.design:
        for name in sorted(suite.standard_suite()):
            print(name)
        return 0
    report(args.design, slack=args.latency_slack, width=args.width)
    if args.verilog or args.dot:
        export_artifacts(
            args.design, args.latency_slack, args.width,
            args.verilog, args.dot,
        )
    if args.vectors:
        export_test_vectors(
            args.design, args.latency_slack, args.width, args.vectors
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
