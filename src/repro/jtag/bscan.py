"""Boundary-scan cells and the boundary register.

Each cell follows the standard BC_1 structure: a capture/shift
flip-flop on the scan path and an update latch that drives the cell's
output in test mode.  Input cells sit between a package pin and the
core; output cells between the core and the pin.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BoundaryCell:
    """One BC_1-style boundary-scan cell.

    ``kind`` is ``"input"`` (pin -> core) or ``"output"`` (core -> pin).
    """

    name: str
    kind: str
    shift_ff: int = 0
    update_latch: int = 0

    def capture(self, value: int) -> None:
        """Capture-DR: sample the functional value into the shift FF."""
        self.shift_ff = value & 1

    def shift(self, scan_in: int) -> int:
        """Shift-DR: returns the bit shifted out."""
        out = self.shift_ff
        self.shift_ff = scan_in & 1
        return out

    def update(self) -> None:
        """Update-DR: move the shifted value to the output latch."""
        self.update_latch = self.shift_ff

    def drive(self, functional: int, test_mode: bool) -> int:
        """The value presented downstream of the cell."""
        return self.update_latch if test_mode else (functional & 1)


class BoundaryRegister:
    """The chain of boundary cells around a core.

    Cell order is scan-in-first.  ``capture_all``/``shift``/
    ``update_all`` mirror the TAP's DR actions when the boundary
    register is selected.
    """

    def __init__(self, cells: list[BoundaryCell]) -> None:
        self.cells = cells
        self._by_name = {c.name: c for c in cells}

    def __len__(self) -> int:
        return len(self.cells)

    def cell(self, name: str) -> BoundaryCell:
        return self._by_name[name]

    def capture_all(self, functional: dict[str, int]) -> None:
        for c in self.cells:
            c.capture(functional.get(c.name, 0))

    def shift(self, tdi: int) -> int:
        """One shift cycle through the whole chain; returns TDO."""
        bit = tdi & 1
        for c in self.cells:
            bit = c.shift(bit)
        return bit

    def update_all(self) -> None:
        for c in self.cells:
            c.update()

    def preload(self, values: dict[str, int]) -> list[int]:
        """TDI bit sequence that loads ``values`` into the shift FFs.

        Bits are returned in the order they must be presented at TDI
        (the bit for the *last* cell in the chain goes first).
        """
        return [
            values.get(c.name, 0) & 1 for c in reversed(self.cells)
        ]

    def snapshot(self) -> dict[str, int]:
        """Shift-FF contents per cell (what a full shift-out reveals)."""
        return {c.name: c.shift_ff for c in self.cells}
