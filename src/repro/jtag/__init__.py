"""IEEE 1149.1 boundary scan (survey section 4.2).

"Testability structures, such as an IEEE 1149.1 boundary scan cell,
can be directly synthesized."  This package provides the synthesis
target: a behavioral-but-cycle-accurate TAP controller
(:mod:`~repro.jtag.tap`), boundary-scan cells and register
(:mod:`~repro.jtag.bscan`), and a wrapper that puts a gate-level core
behind a 4-wire test access port with BYPASS / IDCODE /
SAMPLE-PRELOAD / EXTEST / INTEST instructions
(:mod:`~repro.jtag.wrapper`).

The wrapper's :meth:`~repro.jtag.wrapper.JTAGWrapper.run_intest` drives
the *actual protocol* -- TMS/TDI sequences through the 16-state TAP
FSM -- so tests exercise the same access mechanism a tester would.
"""

from repro.jtag.tap import TAPController, TAPState
from repro.jtag.bscan import BoundaryCell, BoundaryRegister
from repro.jtag.wrapper import Instruction, JTAGWrapper

__all__ = [
    "TAPController",
    "TAPState",
    "BoundaryCell",
    "BoundaryRegister",
    "Instruction",
    "JTAGWrapper",
]
