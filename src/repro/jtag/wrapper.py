"""A gate-level core behind an IEEE 1149.1 test access port.

:class:`JTAGWrapper` surrounds a :class:`~repro.gatelevel.gates.Netlist`
with boundary-scan cells (one input cell per primary input, one output
cell per primary output), a bypass register, a device-ID register, and
an instruction register, all sequenced by the
:class:`~repro.jtag.tap.TAPController`.

Everything is driven through :meth:`tick` -- one TCK rising edge with
given TMS/TDI, returning TDO -- so the higher-level helpers
(:meth:`load_instruction`, :meth:`run_intest`, :meth:`sample_pins`)
exercise the genuine serial protocol.  Edge semantics follow the
standard: capture and shift actions occur on rising edges *while in*
Capture-/Shift- states (i.e. keyed to the state before the edge);
update actions occur on entering the Update- states; under INTEST the
core is single-stepped by rising edges spent in Run-Test/Idle.
"""

from __future__ import annotations

import enum
from typing import Mapping

from repro.gatelevel.gates import Netlist
from repro.gatelevel.simulate import parallel_simulate
from repro.jtag.bscan import BoundaryCell, BoundaryRegister
from repro.jtag.tap import TAPController, TAPState, tms_path_to


class Instruction(enum.Enum):
    """Instruction opcodes (3-bit IR; EXTEST all-zeros and BYPASS
    all-ones per the standard)."""

    EXTEST = 0b000
    IDCODE = 0b001
    SAMPLE = 0b010
    INTEST = 0b100
    BYPASS = 0b111


_BOUNDARY_INSTRUCTIONS = (
    Instruction.SAMPLE, Instruction.INTEST, Instruction.EXTEST
)


class JTAGWrapper:
    """Boundary-scan wrapper around a sequential gate-level core."""

    IR_WIDTH = 3
    #: Capture-IR loads this fixed pattern (LSBs 01 per the standard).
    IR_CAPTURE = 0b001

    def __init__(self, core: Netlist, idcode: int = 0x1996_0C0D,
                 backend: str | None = None) -> None:
        from repro.gatelevel.fault_sim import resolve_backend

        self.core = core
        self.idcode = idcode & 0xFFFFFFFF
        #: core-evaluation engine: the compiled kernel by default, the
        #: interpreter via ``backend="interp"``/``REPRO_FAULTSIM_BACKEND``
        self.backend = resolve_backend(backend)
        cells = [
            BoundaryCell(pi, "input") for pi in sorted(core.inputs())
        ] + [
            BoundaryCell(po, "output") for po in core.outputs
        ]
        self.boundary = BoundaryRegister(cells)
        self.tap = TAPController()
        self.ir_shift = 0
        self.instruction = Instruction.IDCODE  # selected at reset
        self.bypass_ff = 0
        self.id_shift = 0
        self.core_state: dict[str, int] = {}
        self.pin_values: dict[str, int] = {}  # externally applied pins

    # ------------------------------------------------------------------
    # core evaluation

    def _core_inputs(self) -> dict[str, int]:
        values = {}
        for cell in self.boundary.cells:
            if cell.kind != "input":
                continue
            functional = self.pin_values.get(cell.name, 0)
            values[cell.name] = cell.drive(
                functional,
                test_mode=self.instruction is Instruction.INTEST,
            )
        return values

    def _core_eval(self, advance: bool) -> dict[str, int]:
        if self.backend == "kernel":
            from repro.gatelevel.kernel import compiled

            # compiled() caches per netlist, so long INTEST sessions
            # (every Run-Test/Idle edge steps the core) pay the
            # levelization once.
            vals, nxt = compiled(self.core).simulate(
                self._core_inputs(), self.core_state, width=1,
            )
        else:
            # topo_order() is cached on the Netlist itself, no local copy.
            vals, nxt = parallel_simulate(
                self.core, self._core_inputs(), self.core_state, width=1,
            )
        if advance:
            self.core_state = nxt
        return vals

    # ------------------------------------------------------------------
    # the 4-wire interface

    def tick(self, tms: int, tdi: int = 0) -> int:
        """One TCK rising edge.  Returns TDO."""
        prev = self.tap.state
        tdo = 0
        # Actions clocked by this edge, keyed to the state it occurs in.
        if prev is TAPState.CAPTURE_DR:
            self._capture_dr()
        elif prev is TAPState.SHIFT_DR:
            tdo = self._shift_dr(tdi)
        elif prev is TAPState.CAPTURE_IR:
            self.ir_shift = self.IR_CAPTURE
        elif prev is TAPState.SHIFT_IR:
            tdo = self.ir_shift & 1
            self.ir_shift = (self.ir_shift >> 1) | (
                (tdi & 1) << (self.IR_WIDTH - 1)
            )
        elif prev is TAPState.RUN_TEST_IDLE:
            if self.instruction is Instruction.INTEST:
                self._core_eval(advance=True)  # single-step the core

        state = self.tap.step(tms)
        # Entry actions.
        if state is TAPState.TEST_LOGIC_RESET:
            self.instruction = Instruction.IDCODE
        elif state is TAPState.UPDATE_IR:
            try:
                self.instruction = Instruction(self.ir_shift)
            except ValueError:
                self.instruction = Instruction.BYPASS  # unused opcodes
        elif state is TAPState.UPDATE_DR:
            if self.instruction in (Instruction.INTEST, Instruction.EXTEST):
                self.boundary.update_all()
        return tdo

    def _capture_dr(self) -> None:
        if self.instruction in _BOUNDARY_INSTRUCTIONS:
            vals = self._core_eval(advance=False)
            functional: dict[str, int] = {}
            core_ins = self._core_inputs()
            for cell in self.boundary.cells:
                if cell.kind == "output":
                    functional[cell.name] = vals[cell.name]
                elif self.instruction is Instruction.INTEST:
                    functional[cell.name] = core_ins.get(cell.name, 0)
                else:
                    functional[cell.name] = self.pin_values.get(
                        cell.name, 0
                    )
            self.boundary.capture_all(functional)
        elif self.instruction is Instruction.IDCODE:
            self.id_shift = self.idcode
        else:
            self.bypass_ff = 0

    def _shift_dr(self, tdi: int) -> int:
        if self.instruction in _BOUNDARY_INSTRUCTIONS:
            return self.boundary.shift(tdi)
        if self.instruction is Instruction.IDCODE:
            tdo = self.id_shift & 1
            self.id_shift = (self.id_shift >> 1) | ((tdi & 1) << 31)
            return tdo
        tdo = self.bypass_ff
        self.bypass_ff = tdi & 1
        return tdo

    # ------------------------------------------------------------------
    # protocol helpers (all built on tick())

    def _goto(self, goal: TAPState) -> None:
        for tms in tms_path_to(self.tap.state, goal):
            self.tick(tms)

    def reset(self) -> None:
        """Five TMS=1 edges reach Test-Logic-Reset from anywhere."""
        for _ in range(5):
            self.tick(1)
        assert self.tap.reset

    def load_instruction(self, instr: Instruction) -> None:
        """Shift an opcode into the IR (LSB first) and update."""
        self._goto(TAPState.SHIFT_IR)
        for k in range(self.IR_WIDTH):
            last = k == self.IR_WIDTH - 1
            self.tick(1 if last else 0, (instr.value >> k) & 1)
        self._goto(TAPState.UPDATE_IR)
        assert self.instruction is instr

    def shift_dr_bits(self, bits: list[int]) -> list[int]:
        """Capture-DR, shift ``bits`` through, Update-DR.

        Returns the TDO bits (first returned bit = first shifted out).
        Ends in Update-DR, avoiding Run-Test/Idle so INTEST does not
        clock the core as a navigation side effect.
        """
        self._goto(TAPState.SHIFT_DR)
        out = []
        for i, b in enumerate(bits):
            last = i == len(bits) - 1
            out.append(self.tick(1 if last else 0, b))
        self._goto(TAPState.UPDATE_DR)
        return out

    def idle(self, cycles: int) -> None:
        """Spend ``cycles`` rising edges in Run-Test/Idle (under INTEST
        each one single-steps the core)."""
        self._goto(TAPState.RUN_TEST_IDLE)
        for _ in range(cycles):
            self.tick(0)

    def read_idcode(self) -> int:
        self.reset()  # IDCODE is selected at reset
        bits = self.shift_dr_bits([0] * 32)
        value = 0
        for i, b in enumerate(bits):
            value |= b << i
        return value

    def sample_pins(self, pin_values: Mapping[str, int]) -> dict[str, int]:
        """SAMPLE/PRELOAD: snapshot core pins during normal operation."""
        self.pin_values = dict(pin_values)
        self.load_instruction(Instruction.SAMPLE)
        bits = self.shift_dr_bits([0] * len(self.boundary))
        return self._parse_boundary_bits(bits)

    def run_intest(
        self,
        core_inputs: Mapping[str, int],
        run_cycles: int = 1,
    ) -> dict[str, int]:
        """Apply a vector to the core through the boundary register.

        Loads INTEST, preloads the input cells, runs exactly
        ``run_cycles`` core clocks (>= 1), captures, and shifts the
        response out.  Returns the captured core-output values.

        Note the edge *leaving* Run-Test/Idle also clocks the core
        (it occurs while the controller is still in that state), so
        ``idle(run_cycles - 1)`` plus the departure edge gives exactly
        ``run_cycles`` steps.
        """
        if run_cycles < 1:
            raise ValueError("run_cycles must be >= 1")
        self.load_instruction(Instruction.INTEST)
        preload = self.boundary.preload(dict(core_inputs))
        self.shift_dr_bits(preload)  # Update-DR drives the core inputs
        self.idle(run_cycles - 1)
        bits = self.shift_dr_bits([0] * len(self.boundary))
        return {
            name: bit
            for name, bit in self._parse_boundary_bits(bits).items()
            if self.boundary.cell(name).kind == "output"
        }

    def free_run(
        self,
        core_inputs: Mapping[str, int],
        cycles: int,
    ) -> dict[str, int]:
        """Free-run the core under INTEST for ``cycles`` clocks.

        The BIST session check: preload ``core_inputs`` (a session's
        control configuration) through the boundary register, spend
        ``cycles`` rising edges in Run-Test/Idle -- each one
        single-steps the core -- and return the resulting core state
        (the signature registers' flip-flops included).  The state
        after ``cycles`` edges equals a direct
        :func:`~repro.gatelevel.simulate.parallel_simulate` free-run of
        the same configuration.
        """
        if cycles < 1:
            raise ValueError("cycles must be >= 1")
        self.load_instruction(Instruction.INTEST)
        self.shift_dr_bits(self.boundary.preload(dict(core_inputs)))
        self.idle(cycles)
        return dict(self.core_state)

    def _parse_boundary_bits(self, bits: list[int]) -> dict[str, int]:
        """TDO bits emerge last-cell-first."""
        out = {}
        for i, cell in enumerate(reversed(self.boundary.cells)):
            out[cell.name] = bits[i]
        return out
