"""The IEEE 1149.1 TAP controller state machine.

The standard 16-state FSM, advanced on each TCK rising edge by the TMS
value.  State names follow the standard; the controller exposes the
per-state actions the data/instruction registers need (capture, shift,
update) as predicates.
"""

from __future__ import annotations

import enum


class TAPState(enum.Enum):
    """The sixteen controller states of IEEE 1149.1."""

    TEST_LOGIC_RESET = "Test-Logic-Reset"
    RUN_TEST_IDLE = "Run-Test/Idle"
    SELECT_DR_SCAN = "Select-DR-Scan"
    CAPTURE_DR = "Capture-DR"
    SHIFT_DR = "Shift-DR"
    EXIT1_DR = "Exit1-DR"
    PAUSE_DR = "Pause-DR"
    EXIT2_DR = "Exit2-DR"
    UPDATE_DR = "Update-DR"
    SELECT_IR_SCAN = "Select-IR-Scan"
    CAPTURE_IR = "Capture-IR"
    SHIFT_IR = "Shift-IR"
    EXIT1_IR = "Exit1-IR"
    PAUSE_IR = "Pause-IR"
    EXIT2_IR = "Exit2-IR"
    UPDATE_IR = "Update-IR"


#: (state, tms) -> next state, straight from the standard's figure.
_NEXT: dict[tuple[TAPState, int], TAPState] = {
    (TAPState.TEST_LOGIC_RESET, 0): TAPState.RUN_TEST_IDLE,
    (TAPState.TEST_LOGIC_RESET, 1): TAPState.TEST_LOGIC_RESET,
    (TAPState.RUN_TEST_IDLE, 0): TAPState.RUN_TEST_IDLE,
    (TAPState.RUN_TEST_IDLE, 1): TAPState.SELECT_DR_SCAN,
    (TAPState.SELECT_DR_SCAN, 0): TAPState.CAPTURE_DR,
    (TAPState.SELECT_DR_SCAN, 1): TAPState.SELECT_IR_SCAN,
    (TAPState.CAPTURE_DR, 0): TAPState.SHIFT_DR,
    (TAPState.CAPTURE_DR, 1): TAPState.EXIT1_DR,
    (TAPState.SHIFT_DR, 0): TAPState.SHIFT_DR,
    (TAPState.SHIFT_DR, 1): TAPState.EXIT1_DR,
    (TAPState.EXIT1_DR, 0): TAPState.PAUSE_DR,
    (TAPState.EXIT1_DR, 1): TAPState.UPDATE_DR,
    (TAPState.PAUSE_DR, 0): TAPState.PAUSE_DR,
    (TAPState.PAUSE_DR, 1): TAPState.EXIT2_DR,
    (TAPState.EXIT2_DR, 0): TAPState.SHIFT_DR,
    (TAPState.EXIT2_DR, 1): TAPState.UPDATE_DR,
    (TAPState.UPDATE_DR, 0): TAPState.RUN_TEST_IDLE,
    (TAPState.UPDATE_DR, 1): TAPState.SELECT_DR_SCAN,
    (TAPState.SELECT_IR_SCAN, 0): TAPState.CAPTURE_IR,
    (TAPState.SELECT_IR_SCAN, 1): TAPState.TEST_LOGIC_RESET,
    (TAPState.CAPTURE_IR, 0): TAPState.SHIFT_IR,
    (TAPState.CAPTURE_IR, 1): TAPState.EXIT1_IR,
    (TAPState.SHIFT_IR, 0): TAPState.SHIFT_IR,
    (TAPState.SHIFT_IR, 1): TAPState.EXIT1_IR,
    (TAPState.EXIT1_IR, 0): TAPState.PAUSE_IR,
    (TAPState.EXIT1_IR, 1): TAPState.UPDATE_IR,
    (TAPState.PAUSE_IR, 0): TAPState.PAUSE_IR,
    (TAPState.PAUSE_IR, 1): TAPState.EXIT2_IR,
    (TAPState.EXIT2_IR, 0): TAPState.SHIFT_IR,
    (TAPState.EXIT2_IR, 1): TAPState.UPDATE_IR,
    (TAPState.UPDATE_IR, 0): TAPState.RUN_TEST_IDLE,
    (TAPState.UPDATE_IR, 1): TAPState.SELECT_DR_SCAN,
}


class TAPController:
    """Cycle-accurate TAP FSM."""

    def __init__(self) -> None:
        self.state = TAPState.TEST_LOGIC_RESET

    def step(self, tms: int) -> TAPState:
        """One TCK rising edge; returns the new state."""
        self.state = _NEXT[(self.state, 1 if tms else 0)]
        return self.state

    # -- per-state action predicates -----------------------------------

    @property
    def capture_dr(self) -> bool:
        return self.state is TAPState.CAPTURE_DR

    @property
    def shift_dr(self) -> bool:
        return self.state is TAPState.SHIFT_DR

    @property
    def update_dr(self) -> bool:
        return self.state is TAPState.UPDATE_DR

    @property
    def capture_ir(self) -> bool:
        return self.state is TAPState.CAPTURE_IR

    @property
    def shift_ir(self) -> bool:
        return self.state is TAPState.SHIFT_IR

    @property
    def update_ir(self) -> bool:
        return self.state is TAPState.UPDATE_IR

    @property
    def reset(self) -> bool:
        return self.state is TAPState.TEST_LOGIC_RESET


def tms_path_to(start: TAPState, goal: TAPState) -> list[int]:
    """Shortest TMS sequence from ``start`` to ``goal`` (BFS)."""
    if start is goal:
        return []
    frontier: list[tuple[TAPState, list[int]]] = [(start, [])]
    seen = {start}
    while frontier:
        state, path = frontier.pop(0)
        for tms in (0, 1):
            nxt = _NEXT[(state, tms)]
            if nxt is goal:
                return path + [tms]
            if nxt not in seen:
                seen.add(nxt)
                frontier.append((nxt, path + [tms]))
    raise RuntimeError("TAP FSM is strongly connected; unreachable")
