"""Synthetic CDFG generators.

Used by the property-based tests and by the parameter sweeps in the
benchmark harness (e.g. scaling the number and length of behavioral
loops, section 3.3.1).  All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import random

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.graph import CDFG

_KINDS = ("+", "-", "*", "+", "+", "-")  # add-heavy mix, DSP-like


def random_dag_cdfg(
    n_ops: int,
    n_inputs: int = 4,
    seed: int = 0,
    width: int = 8,
    fanin_window: int = 6,
) -> CDFG:
    """A random acyclic CDFG with ``n_ops`` binary operations.

    Each operation draws its operands from the ``fanin_window`` most
    recently produced values (or primary inputs), which yields the
    narrow, chain-heavy DFGs typical of DSP behaviors rather than
    uniformly random graphs.  Values left unconsumed become primary
    outputs.
    """
    if n_ops < 1:
        raise ValueError("n_ops must be >= 1")
    rng = random.Random(seed)
    b = CDFGBuilder(f"rand{n_ops}_{seed}", width=width)
    inputs = [f"i{k}" for k in range(n_inputs)]
    b.inputs(*inputs)
    available = list(inputs)
    produced: list[str] = []
    consumed: set[str] = set()
    for k in range(n_ops):
        window = available[-fanin_window:]
        a = rng.choice(window)
        c = rng.choice(window)
        out = f"v{k}"
        b.op(rng.choice(_KINDS), (a, c), out, name=f"op{k}")
        consumed.update((a, c))
        available.append(out)
        produced.append(out)
    cdfg = b.build(validate=False)
    # Expose dangling values as primary outputs so validation passes.
    dangling = [v for v in produced if v not in consumed]
    return _with_outputs(cdfg, dangling)


def random_looped_cdfg(
    n_ops: int,
    n_loops: int,
    loop_length: int = 3,
    n_inputs: int = 4,
    seed: int = 0,
    width: int = 8,
) -> CDFG:
    """A random CDFG containing ``n_loops`` behavioral loops.

    Each loop is a chain of ``loop_length`` operations whose head reads
    the tail's value loop-carried, mimicking filter-state feedback.  The
    remaining ``n_ops - n_loops * loop_length`` operations form random
    acyclic glue that consumes loop outputs.
    """
    if n_loops * loop_length > n_ops:
        raise ValueError("loops do not fit in n_ops")
    rng = random.Random(seed)
    b = CDFGBuilder(f"loopy{n_ops}_{n_loops}_{seed}", width=width)
    inputs = [f"i{k}" for k in range(n_inputs)]
    b.inputs(*inputs)
    available = list(inputs)
    consumed: set[str] = set()
    produced: list[str] = []

    def emit(kind, a, c, out, name, carried=()):
        b.op(kind, (a, c), out, name=name, carried=carried)
        consumed.update((a, c))
        consumed.difference_update(carried)  # carried uses don't sink a value
        available.append(out)
        produced.append(out)

    op_idx = 0
    for loop in range(n_loops):
        tail = f"L{loop}_{loop_length - 1}"
        prev = tail
        for j in range(loop_length):
            out = f"L{loop}_{j}"
            other = rng.choice(available)
            carried = (prev,) if j == 0 else ()
            emit(rng.choice(_KINDS), prev, other, out,
                 f"op{op_idx}", carried=carried)
            consumed.add(tail)  # the carried read still counts as a use
            prev = out
            op_idx += 1
    while op_idx < n_ops:
        a = rng.choice(available[-8:])
        c = rng.choice(available[-8:])
        emit(rng.choice(_KINDS), a, c, f"v{op_idx}", f"op{op_idx}")
        op_idx += 1
    cdfg = b.build(validate=False)
    dangling = [v for v in produced if v not in consumed]
    return _with_outputs(cdfg, dangling)


def random_control_cdfg(
    n_ops: int,
    n_selects: int,
    n_loops: int = 1,
    n_inputs: int = 4,
    seed: int = 0,
    width: int = 8,
) -> CDFG:
    """A random *control-flow-oriented* CDFG (survey §7a class).

    Like :func:`random_looped_cdfg`, but ``n_selects`` of the glue
    operations are data-steering selects whose conditions come from
    comparisons -- state flows through multiplexing rather than
    arithmetic, the telecom-style structure the survey says techniques
    must evolve toward.
    """
    if n_loops * 3 + n_selects > n_ops:
        raise ValueError("selects and loops do not fit in n_ops")
    rng = random.Random(seed)
    b = CDFGBuilder(f"ctrl{n_ops}_{n_selects}_{seed}", width=width)
    inputs = [f"i{k}" for k in range(n_inputs)]
    b.inputs(*inputs)
    available = list(inputs)
    consumed: set[str] = set()
    produced: list[str] = []

    def emit(kind, ins, out, name, carried=()):
        b.op(kind, ins, out, name=name, carried=carried)
        consumed.update(ins)
        consumed.difference_update(carried)
        available.append(out)
        produced.append(out)

    op_idx = 0
    for loop in range(n_loops):
        # a select-steered feedback loop: state chosen by a comparison
        tail = f"L{loop}_state"
        cond = f"L{loop}_c"
        emit("<", (rng.choice(available), tail), cond,
             f"op{op_idx}", carried=(tail,))
        consumed.add(tail)
        op_idx += 1
        upd = f"L{loop}_u"
        emit(rng.choice(_KINDS), (rng.choice(available),
                                  rng.choice(available)),
             upd, f"op{op_idx}")
        op_idx += 1
        emit("select", (cond, upd, rng.choice(available)), tail,
             f"op{op_idx}")
        op_idx += 1
    selects_left = n_selects
    while op_idx < n_ops:
        a = rng.choice(available[-8:])
        c = rng.choice(available[-8:])
        if selects_left > 0 and rng.random() < 0.5:
            cond = f"c{op_idx}"
            emit("<", (a, c), cond, f"op{op_idx}")
            op_idx += 1
            if op_idx >= n_ops:
                break
            emit("select", (cond, rng.choice(available[-8:]), c),
                 f"v{op_idx}", f"op{op_idx}")
            selects_left -= 1
        else:
            emit(rng.choice(_KINDS), (a, c), f"v{op_idx}", f"op{op_idx}")
        op_idx += 1
    cdfg = b.build(validate=False)
    dangling = [v for v in produced if v not in consumed]
    return _with_outputs(cdfg, dangling)


def _with_outputs(cdfg: CDFG, names: list[str]) -> CDFG:
    """Rebuild ``cdfg`` with ``names`` (plus existing outputs) marked as POs."""
    from repro.cdfg.graph import Variable

    out = CDFG(cdfg.name)
    mark = set(names)
    for v in cdfg.variables.values():
        if v.name in mark and not v.is_input:
            out.add_variable(Variable(v.name, v.width, False, True))
        else:
            out.add_variable(v)
    for op in cdfg.operations.values():
        out.add_operation(op)
    out.validate()
    return out
