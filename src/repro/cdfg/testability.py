"""Behavioral testability analysis (section 3.4, after [9]).

Classifies each variable of a behavior by how hard it is to control
from the primary inputs and to observe at the primary outputs, using
operation-distance and loop membership.  This is the analysis that
drives test-statement insertion [9] and the selection heuristics of the
scan and BIST passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.cdfg.analysis import loop_variables
from repro.cdfg.graph import CDFG

#: Classification labels used by [9].
CONTROLLABLE = "controllable"
PARTIALLY_CONTROLLABLE = "partially_controllable"
OBSERVABLE = "observable"
PARTIALLY_OBSERVABLE = "partially_observable"


@dataclass(frozen=True)
class VariableTestability:
    """Per-variable behavioral testability record.

    ``control_depth`` / ``observe_depth`` count operations on the
    shortest justification / propagation path (None when unreachable).
    ``on_loop`` marks membership in a CDFG loop, which degrades both.
    """

    variable: str
    control_depth: int | None
    observe_depth: int | None
    on_loop: bool

    @property
    def controllability(self) -> str:
        if self.control_depth == 0:
            return CONTROLLABLE
        return PARTIALLY_CONTROLLABLE

    @property
    def observability(self) -> str:
        if self.observe_depth == 0:
            return OBSERVABLE
        return PARTIALLY_OBSERVABLE

    def score(self, loop_penalty: int = 4) -> int:
        """Scalar hardness score: larger is harder to test."""
        c = self.control_depth if self.control_depth is not None else 99
        o = self.observe_depth if self.observe_depth is not None else 99
        return c + o + (loop_penalty if self.on_loop else 0)


def analyze(cdfg: CDFG) -> dict[str, VariableTestability]:
    """Behavioral testability of every variable in ``cdfg``."""
    g = cdfg.variable_graph()
    on_loop = loop_variables(cdfg)
    pis = [v.name for v in cdfg.primary_inputs()]
    pos = [v.name for v in cdfg.primary_outputs()]

    cdepth = _multi_source_shortest(g, pis)
    odepth = _multi_source_shortest(g.reverse(copy=False), pos)

    out: dict[str, VariableTestability] = {}
    for name in cdfg.variables:
        out[name] = VariableTestability(
            variable=name,
            control_depth=cdepth.get(name),
            observe_depth=odepth.get(name),
            on_loop=name in on_loop,
        )
    return out


def hardest_variables(
    cdfg: CDFG, count: int, loop_penalty: int = 4
) -> list[str]:
    """The ``count`` hardest-to-test variables, hardest first.

    Primary I/O variables are excluded (they are trivially accessible).
    """
    records = analyze(cdfg)
    candidates = [
        r for name, r in records.items()
        if not cdfg.variable(name).is_input
        and not cdfg.variable(name).is_output
    ]
    candidates.sort(key=lambda r: (-r.score(loop_penalty), r.variable))
    return [r.variable for r in candidates[:count]]


def _multi_source_shortest(
    g: nx.DiGraph, sources: list[str]
) -> dict[str, int]:
    present = [s for s in sources if s in g]
    if not present:
        return {}
    return nx.multi_source_dijkstra_path_length(g, present, weight=None)
