"""Behavioral modification for testability (section 3.4).

Two families of transformation are implemented:

* **Deflection operations** ([16], Dey & Potkonjak ITC'94): identity
  operations (``x + 0``, ``x * 1``) inserted between CDFG operations.
  They preserve the computed function but *split variable lifetimes*,
  removing the sharing bottlenecks that force extra scan registers.
  See :func:`deflect_variable` and :func:`insert_deflection_ops`.

* **Test statements** ([9], Chen/Karnik/Saab): statements executed only
  in test mode that make hard-to-control variables loadable and
  hard-to-observe variables visible.  See
  :func:`insert_test_statements`.

All transforms return a *new* CDFG; inputs are never mutated.
"""

from __future__ import annotations

from repro.cdfg.graph import (
    CDFG,
    CDFGError,
    IDENTITY_ELEMENTS,
    Operation,
    Variable,
)
from repro.cdfg import testability


def _rebuild(
    cdfg: CDFG,
    name: str,
    extra_vars: list[Variable],
    replace_ops: dict[str, Operation],
    extra_ops: list[Operation],
) -> CDFG:
    out = CDFG(name)
    for v in cdfg.variables.values():
        out.add_variable(v)
    for v in extra_vars:
        out.add_variable(v)
    for op in cdfg.operations.values():
        out.add_operation(replace_ops.get(op.name, op))
    for op in extra_ops:
        out.add_operation(op)
    out.validate()
    return out


def _identity_input_name(kind: str) -> str:
    """Name of the shared identity-constant input for ``kind``."""
    return f"_id{IDENTITY_ELEMENTS[kind]}"


def deflect_variable(
    cdfg: CDFG,
    variable: str,
    reroute_consumers: list[str],
    kind: str = "+",
) -> CDFG:
    """Insert one deflection operation on ``variable``.

    A new operation ``vd = variable <kind> identity`` is added and the
    listed consumer operations are rerouted to read ``vd`` instead of
    ``variable``.  Since the identity element leaves the value
    unchanged, the behavior is preserved while ``variable``'s lifetime
    now ends at its remaining (non-rerouted) consumers.

    Raises
    ------
    CDFGError
        If ``kind`` has no identity element or a named consumer does not
        read ``variable``.
    """
    if kind not in IDENTITY_ELEMENTS:
        raise CDFGError(f"kind {kind!r} has no identity element")
    vd_name = _fresh_name(cdfg, f"{variable}_defl")
    id_name = _identity_input_name(kind)
    width = cdfg.variable(variable).width

    extra_vars = [Variable(vd_name, width)]
    if id_name not in cdfg.variables:
        extra_vars.append(Variable(id_name, width, is_input=True))

    replace: dict[str, Operation] = {}
    for op_name in reroute_consumers:
        op = cdfg.operation(op_name)
        if variable not in op.inputs:
            raise CDFGError(
                f"operation {op_name!r} does not consume {variable!r}"
            )
        new_inputs = tuple(vd_name if v == variable else v for v in op.inputs)
        new_carried = frozenset(
            vd_name if v == variable else v for v in op.carried
        )
        replace[op_name] = Operation(
            op.name, op.kind, new_inputs, op.output,
            carried=new_carried, delay=op.delay,
        )
    defl_op = Operation(
        _fresh_name(cdfg, f"defl_{variable}"),
        kind,
        (variable, id_name),
        vd_name,
        delay=1,
    )
    return _rebuild(cdfg, cdfg.name + "+defl", extra_vars, replace, [defl_op])


def insert_deflection_ops(
    cdfg: CDFG,
    split_requests: list[tuple[str, list[str]]],
    kind: str = "+",
) -> CDFG:
    """Apply several :func:`deflect_variable` transforms in sequence.

    ``split_requests`` is a list of ``(variable, consumers_to_reroute)``
    pairs.  Used by the scan pass ([16] flow) after it identifies
    sharing bottlenecks among selected scan variables.
    """
    out = cdfg
    for variable, consumers in split_requests:
        out = deflect_variable(out, variable, consumers, kind=kind)
    return out


def insert_test_statements(
    cdfg: CDFG,
    control_vars: list[str] | None = None,
    observe_vars: list[str] | None = None,
    budget: int = 2,
) -> CDFG:
    """Add test-mode statements improving variable access ([9]).

    For each hard-to-control variable ``v`` a select operation
    ``v_t = select(tmode, tin_k, v)`` is inserted and all consumers are
    rerouted to ``v_t``: in test mode the variable becomes directly
    loadable from the new test input.  For each hard-to-observe
    variable, the value is folded into a new test output through an
    XOR-compaction chain (one extra output pin total).

    When the variable lists are omitted, the ``budget`` hardest
    variables from :func:`repro.cdfg.testability.hardest_variables`
    are improved on each axis.
    """
    records = testability.analyze(cdfg)
    if control_vars is None:
        hard = testability.hardest_variables(cdfg, budget)
        control_vars = [
            v for v in hard
            if records[v].control_depth is None or records[v].control_depth > 1
        ]
    if observe_vars is None:
        hard = testability.hardest_variables(cdfg, budget)
        observe_vars = [
            v for v in hard
            if records[v].observe_depth is None or records[v].observe_depth > 1
        ]

    out = cdfg
    if control_vars:
        out = _add_control_statements(out, control_vars)
    if observe_vars:
        out = _add_observe_statements(out, observe_vars)
    return out


def _add_control_statements(cdfg: CDFG, variables: list[str]) -> CDFG:
    width = max(v.width for v in cdfg.variables.values())
    extra_vars: list[Variable] = []
    if "tmode" not in cdfg.variables:
        extra_vars.append(Variable("tmode", 1, is_input=True))
    replace: dict[str, Operation] = {}
    extra_ops: list[Operation] = []
    # Collect every consumer rewrite first, then rebuild once.
    pending: dict[str, dict[str, str]] = {}  # op -> {old var: new var}
    for var in variables:
        vt = _fresh_name(cdfg, f"{var}_t", extra=[v.name for v in extra_vars])
        tin = _fresh_name(cdfg, f"tin_{var}", extra=[v.name for v in extra_vars])
        extra_vars.append(Variable(vt, cdfg.variable(var).width))
        extra_vars.append(Variable(tin, cdfg.variable(var).width, is_input=True))
        extra_ops.append(
            Operation(
                _fresh_name(cdfg, f"sel_{var}"),
                "select",
                ("tmode", tin, var),
                vt,
            )
        )
        for consumer in cdfg.consumers_of(var):
            pending.setdefault(consumer.name, {})[var] = vt
    for op_name, mapping in pending.items():
        op = cdfg.operation(op_name)
        new_inputs = tuple(mapping.get(v, v) for v in op.inputs)
        new_carried = frozenset(mapping.get(v, v) for v in op.carried)
        replace[op_name] = Operation(
            op.name, op.kind, new_inputs, op.output,
            carried=new_carried, delay=op.delay,
        )
    return _rebuild(cdfg, cdfg.name + "+tctl", extra_vars, replace, extra_ops)


def _add_observe_statements(cdfg: CDFG, variables: list[str]) -> CDFG:
    width = max(cdfg.variable(v).width for v in variables)
    extra_vars: list[Variable] = []
    extra_ops: list[Operation] = []
    acc = None
    names_so_far: list[str] = []
    for i, var in enumerate(variables):
        if acc is None:
            acc = var
            continue
        nxt = _fresh_name(cdfg, f"tobs{i}", extra=names_so_far)
        names_so_far.append(nxt)
        extra_vars.append(Variable(nxt, width))
        extra_ops.append(
            Operation(
                _fresh_name(cdfg, f"xor_t{i}", extra=names_so_far),
                "^",
                (acc, var),
                nxt,
            )
        )
        acc = nxt
    # Promote the compaction result (or the single variable) to a PO by
    # copying it into a fresh output variable.
    tout = _fresh_name(cdfg, "tout", extra=names_so_far)
    extra_vars.append(Variable(tout, width, is_output=True))
    extra_ops.append(
        Operation(
            _fresh_name(cdfg, "obs_copy", extra=names_so_far + [tout]),
            "|",
            (acc, acc),
            tout,
        )
    )
    return _rebuild(cdfg, cdfg.name + "+tobs", extra_vars, {}, extra_ops)


def _fresh_name(cdfg: CDFG, base: str, extra: list[str] | None = None) -> str:
    taken = set(cdfg.variables) | set(cdfg.operations)
    if extra:
        taken.update(extra)
    if base not in taken:
        return base
    k = 2
    while f"{base}{k}" in taken:
        k += 1
    return f"{base}{k}"
