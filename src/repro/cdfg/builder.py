"""Convenient CDFG construction.

Two entry points:

* :class:`CDFGBuilder` -- programmatic fluent interface used by the
  benchmark suite and tests.
* :func:`parse_behavior` -- a tiny single-assignment language, one
  statement per line::

      input a b c
      output y
      t1 = a + b
      t2 = t1 * c        # '*' defaults to delay 2
      y  = t2 + a
      s  = y @+ s        # '@' marks the *second* operand loop-carried

  The ``@`` prefix on an operator marks its right operand as
  loop-carried (the value from the previous iteration), which is how
  behavioral loops (section 3.3.1) are expressed.
"""

from __future__ import annotations

import re

from repro.cdfg.graph import CDFG, CDFGError, Operation, Variable

#: Default operation latencies in control steps (multipliers are the
#: classic 2-cycle units of the HLS literature).
DEFAULT_DELAYS = {"*": 2}


class CDFGBuilder:
    """Fluent builder for :class:`~repro.cdfg.graph.CDFG` objects."""

    def __init__(self, name: str = "cdfg", width: int = 8) -> None:
        self._cdfg = CDFG(name)
        self._width = width
        self._counter: dict[str, int] = {}

    # ------------------------------------------------------------------

    def inputs(self, *names: str, width: int | None = None) -> "CDFGBuilder":
        for n in names:
            self._cdfg.add_variable(
                Variable(n, width or self._width, is_input=True)
            )
        return self

    def outputs(self, *names: str, width: int | None = None) -> "CDFGBuilder":
        for n in names:
            self._cdfg.add_variable(
                Variable(n, width or self._width, is_output=True)
            )
        return self

    def var(self, name: str, width: int | None = None) -> "CDFGBuilder":
        self._cdfg.add_variable(Variable(name, width or self._width))
        return self

    def op(
        self,
        kind: str,
        inputs: tuple[str, ...] | list[str],
        output: str,
        name: str | None = None,
        carried: tuple[str, ...] = (),
        delay: int | None = None,
    ) -> "CDFGBuilder":
        """Add an operation; missing variables are created as intermediates."""
        for v in tuple(inputs) + (output,):
            if v not in self._cdfg.variables:
                self._cdfg.add_variable(Variable(v, self._width))
        if name is None:
            self._counter[kind] = self._counter.get(kind, 0) + 1
            name = f"{kind}{self._counter[kind]}"
        self._cdfg.add_operation(
            Operation(
                name,
                kind,
                tuple(inputs),
                output,
                carried=frozenset(carried),
                delay=delay if delay is not None else DEFAULT_DELAYS.get(kind, 1),
            )
        )
        return self

    # shorthand operation helpers -------------------------------------

    def add(self, a: str, b: str, out: str, **kw) -> "CDFGBuilder":
        return self.op("+", (a, b), out, **kw)

    def sub(self, a: str, b: str, out: str, **kw) -> "CDFGBuilder":
        return self.op("-", (a, b), out, **kw)

    def mul(self, a: str, b: str, out: str, **kw) -> "CDFGBuilder":
        return self.op("*", (a, b), out, **kw)

    def lt(self, a: str, b: str, out: str, **kw) -> "CDFGBuilder":
        return self.op("<", (a, b), out, **kw)

    def build(self, validate: bool = True) -> CDFG:
        if validate:
            self._cdfg.validate()
        return self._cdfg


_STMT_RE = re.compile(
    r"^(?P<out>\w+)\s*=\s*(?P<a>\w+)\s*(?P<carry>@?)"
    r"(?P<op>\+|\-|\*|\&|\||\^|<<|>>|<|>|==)\s*(?P<b>\w+)$"
)


def parse_behavior(text: str, name: str = "cdfg", width: int = 8) -> CDFG:
    """Parse the tiny behavioral language described in the module docstring.

    Raises
    ------
    CDFGError
        On any malformed statement.
    """
    builder = CDFGBuilder(name, width=width)
    declared_out: list[str] = []
    statements: list[tuple[str, str, str, str, bool]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        head, _, rest = line.partition(" ")
        if head == "input":
            builder.inputs(*rest.split())
            continue
        if head == "output":
            declared_out.extend(rest.split())
            continue
        m = _STMT_RE.match(line)
        if m is None:
            raise CDFGError(f"cannot parse statement: {line!r}")
        statements.append(
            (m["out"], m["a"], m["op"], m["b"], bool(m["carry"]))
        )
    builder.outputs(*declared_out)
    for out, a, op, b, carried in statements:
        builder.op(op, (a, b), out, carried=(b,) if carried else ())
    return builder.build()
