"""CDFG interpretation: execute a behavior numerically.

Used to (a) verify that behavioral transformations preserve the
computed function (deflection operations, test statements in functional
mode), and (b) drive the arithmetic-BIST coverage metrics of [28],
which need the actual value streams seen at operation inputs.

Semantics: fixed-width unsigned arithmetic (values masked to each
variable's width); loop-carried inputs read the value produced in the
previous iteration (state, initialised to 0); comparisons produce 0/1;
``select(c, a, b)`` returns ``a`` when ``c`` is nonzero else ``b``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

import networkx as nx

from repro.cdfg.graph import CDFG, CDFGError, Operation

_BINOPS: Mapping[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << (b & 0x1F),
    ">>": lambda a, b: a >> (b & 0x1F),
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "==": lambda a, b: int(a == b),
}


def _apply(op: Operation, values: Sequence[int], width: int) -> int:
    mask = (1 << width) - 1
    if op.kind == "select":
        cond, a, b = values
        return (a if cond else b) & mask
    if op.kind in _BINOPS:
        a, b = values
        return _BINOPS[op.kind](a, b) & mask
    raise CDFGError(f"no interpretation for operation kind {op.kind!r}")


def run_iteration(
    cdfg: CDFG,
    inputs: Mapping[str, int],
    state: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """Execute one iteration; returns the value of *every* variable.

    ``state`` supplies previous-iteration values for variables read
    loop-carried (missing entries default to 0).  The returned dict can
    be fed back as the next iteration's state.
    """
    state = dict(state or {})
    values: dict[str, int] = {}
    for v in cdfg.primary_inputs():
        if v.name not in inputs:
            raise CDFGError(f"missing value for primary input {v.name!r}")
        values[v.name] = inputs[v.name] & ((1 << v.width) - 1)

    dag = cdfg.op_graph(include_carried=False)
    for op_name in nx.topological_sort(dag):
        op = cdfg.operation(op_name)
        operands = []
        for v in op.inputs:
            if v in op.carried:
                operands.append(state.get(v, 0))
            else:
                operands.append(values[v])
        width = cdfg.variable(op.output).width
        values[op.output] = _apply(op, operands, width)
    return values


def run_sequence(
    cdfg: CDFG,
    input_stream: Iterable[Mapping[str, int]],
) -> list[dict[str, int]]:
    """Execute successive iterations, threading loop-carried state."""
    state: dict[str, int] = {}
    trace: list[dict[str, int]] = []
    for inputs in input_stream:
        values = run_iteration(cdfg, inputs, state)
        trace.append(values)
        state = values
    return trace


def outputs_of(cdfg: CDFG, values: Mapping[str, int]) -> dict[str, int]:
    """Project an iteration's values onto the primary outputs."""
    return {v.name: values[v.name] for v in cdfg.primary_outputs()}


def equivalent_behavior(
    original: CDFG,
    transformed: CDFG,
    input_stream: Sequence[Mapping[str, int]],
    extra_inputs: Mapping[str, int] | None = None,
) -> bool:
    """Check the transformed behavior computes the same primary outputs.

    ``extra_inputs`` pins the transform-introduced inputs (identity
    constants, ``tmode=0``, ...) to their functional-mode values.
    Outputs added by the transform (test outputs) are ignored.
    """
    orig_outputs = {v.name for v in original.primary_outputs()}
    extra = dict(extra_inputs or {})
    stream2 = [{**inputs, **extra} for inputs in input_stream]
    trace1 = run_sequence(original, input_stream)
    trace2 = run_sequence(transformed, stream2)
    for vals1, vals2 in zip(trace1, trace2):
        for name in orig_outputs:
            if vals1[name] != vals2[name]:
                return False
    return True


def functional_mode_inputs(transformed: CDFG, original: CDFG) -> dict[str, int]:
    """Default values for transform-introduced primary inputs.

    Identity-constant inputs (``_id0``/``_id1``) get their identity
    value; ``tmode`` gets 0; any other new input gets 0.
    """
    known = {v.name for v in original.primary_inputs()}
    out: dict[str, int] = {}
    for v in transformed.primary_inputs():
        if v.name in known:
            continue
        if v.name.startswith("_id"):
            out[v.name] = int(v.name[3:])
        else:
            out[v.name] = 0
    return out
