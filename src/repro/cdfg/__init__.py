"""Control-Data Flow Graph (CDFG) substrate.

The CDFG is the behavioral representation used throughout the survey
(section 1.1): operations connected by data-dependency edges, with
loop-carried dependencies modelling behavioral loops (section 3.3.1).

Public API:

* :class:`~repro.cdfg.graph.CDFG`, :class:`~repro.cdfg.graph.Operation`,
  :class:`~repro.cdfg.graph.Variable` -- the data model.
* :class:`~repro.cdfg.builder.CDFGBuilder` -- fluent construction, plus
  :func:`~repro.cdfg.builder.parse_behavior` for a tiny assignment
  language.
* :mod:`~repro.cdfg.analysis` -- ASAP/ALAP, mobility, loop enumeration.
* :mod:`~repro.cdfg.lifetimes` -- variable lifetime intervals for a
  schedule.
* :mod:`~repro.cdfg.suite` -- the standard HLS benchmark behaviors used
  by the papers the survey covers (Figure 1, HAL diffeq, EWF, ...).
* :mod:`~repro.cdfg.transform` -- behavioral modification for
  testability (deflection operations [16], test statements [9]).
"""

from repro.cdfg.graph import CDFG, Operation, Variable
from repro.cdfg.builder import CDFGBuilder, parse_behavior
from repro.cdfg.analysis import (
    asap_schedule,
    alap_schedule,
    mobility,
    critical_path_length,
    cdfg_loops,
    loop_variables,
)
from repro.cdfg.lifetimes import Lifetime, variable_lifetimes

__all__ = [
    "CDFG",
    "Operation",
    "Variable",
    "CDFGBuilder",
    "parse_behavior",
    "asap_schedule",
    "alap_schedule",
    "mobility",
    "critical_path_length",
    "cdfg_loops",
    "loop_variables",
    "Lifetime",
    "variable_lifetimes",
]
