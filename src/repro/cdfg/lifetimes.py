"""Variable lifetimes under a schedule.

The lifetime convention follows the register-transfer semantics used by
the surveyed register-assignment papers [3,24,25,31]:

* A value produced by an operation scheduled at step *s* with delay *d*
  is written into a register at the clock edge ending step ``s+d-1``;
  it therefore *occupies* the register from step ``s+d`` onwards.
* The value must be held through the control step of its last
  (non-carried) consumer.
* Primary inputs are loaded before step 1, so they occupy their
  register from step 1.
* Primary outputs must be held through step ``n_steps + 1`` (the
  "deliver" boundary) so they can be observed after the iteration.
* A loop-carried use wraps around: the value is additionally alive from
  its birth to the end of the iteration and from step 1 to the carried
  consumer's step in the next iteration.  Lifetimes are therefore
  represented as *sets* of control steps, not intervals.

Two variables can share a register iff their lifetimes are disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cdfg.graph import CDFG, CDFGError


@dataclass(frozen=True)
class Lifetime:
    """The set of control steps during which a variable occupies a register."""

    variable: str
    steps: frozenset[int]

    @property
    def birth(self) -> int:
        return min(self.steps) if self.steps else 0

    @property
    def death(self) -> int:
        return max(self.steps) if self.steps else 0

    @property
    def length(self) -> int:
        return len(self.steps)

    def overlaps(self, other: "Lifetime") -> bool:
        return bool(self.steps & other.steps)


def schedule_length(cdfg: CDFG, schedule: Mapping[str, int]) -> int:
    """Number of control steps used by ``schedule``."""
    if not schedule:
        return 0
    return max(
        schedule[o] + cdfg.operation(o).delay - 1 for o in schedule
    )


def variable_lifetimes(
    cdfg: CDFG, schedule: Mapping[str, int]
) -> dict[str, Lifetime]:
    """Compute the lifetime of every variable under ``schedule``.

    Raises :class:`CDFGError` when the schedule violates a data
    dependency (a consumer scheduled before its producer's result is
    available).
    """
    n_steps = schedule_length(cdfg, schedule)
    lifetimes: dict[str, Lifetime] = {}
    for var in cdfg.variables.values():
        producer = cdfg.producer_of(var.name)
        if producer is None:
            if not var.is_input:
                raise CDFGError(f"variable {var.name!r} has no producer")
            birth = 1
        else:
            birth = schedule[producer.name] + producer.delay
        steps: set[int] = set()
        last_use = birth if var.is_output or producer is None else birth
        for consumer in cdfg.consumers_of(var.name):
            use_step = schedule[consumer.name]
            # Operands of a multicycle unit must be held through the
            # consumer's entire execution (the unit is combinational).
            hold_until = use_step + consumer.delay - 1
            if var.name in consumer.carried:
                # Wrap-around: alive to end of iteration, then from step
                # 1 of the next iteration to the consumer.
                steps.update(range(birth, n_steps + 1))
                steps.update(range(1, hold_until + 1))
                continue
            if use_step < birth:
                raise CDFGError(
                    f"schedule violates dependency: {consumer.name!r} at "
                    f"step {use_step} reads {var.name!r} born at {birth}"
                )
            last_use = max(last_use, hold_until)
        if var.is_output:
            last_use = max(last_use, n_steps + 1)
        steps.update(range(birth, last_use + 1))
        lifetimes[var.name] = Lifetime(var.name, frozenset(steps))
    return lifetimes


def lifetimes_overlap(
    lifetimes: Mapping[str, Lifetime], a: str, b: str
) -> bool:
    """True when variables ``a`` and ``b`` cannot share a register."""
    return lifetimes[a].overlaps(lifetimes[b])
