"""CDFG analysis: ASAP/ALAP schedules, mobility, and loop enumeration.

The mobility of an operation (ALAP - ASAP control step) drives list
scheduling and the mobility-path scheduling of [26].  The loop
enumeration implements the section 3.3.1 view: a *CDFG loop* is a cycle
of data-dependency edges in the variable-level dependence graph; each
such cycle necessarily crosses at least one loop-carried edge.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

from repro.cdfg.graph import CDFG, CDFGError


def asap_schedule(cdfg: CDFG) -> dict[str, int]:
    """As-soon-as-possible control step for each operation (1-based).

    Ignores loop-carried edges; an operation scheduled at step *s* with
    delay *d* produces its result at the end of step ``s + d - 1``.
    """
    dag = cdfg.op_graph(include_carried=False)
    steps: dict[str, int] = {}
    for op_name in nx.topological_sort(dag):
        op = cdfg.operation(op_name)
        earliest = 1
        for pred in dag.predecessors(op_name):
            p = cdfg.operation(pred)
            earliest = max(earliest, steps[pred] + p.delay)
        steps[op_name] = earliest
    return steps


def critical_path_length(cdfg: CDFG) -> int:
    """Minimum number of control steps for any feasible schedule."""
    asap = asap_schedule(cdfg)
    if not asap:
        return 0
    return max(asap[o] + cdfg.operation(o).delay - 1 for o in asap)


def alap_schedule(cdfg: CDFG, num_steps: int | None = None) -> dict[str, int]:
    """As-late-as-possible control step for each operation.

    Parameters
    ----------
    num_steps:
        Latency constraint; defaults to the critical path length.
        Raises :class:`CDFGError` if infeasible.
    """
    cpl = critical_path_length(cdfg)
    if num_steps is None:
        num_steps = cpl
    if num_steps < cpl:
        raise CDFGError(
            f"latency constraint {num_steps} below critical path {cpl}"
        )
    dag = cdfg.op_graph(include_carried=False)
    steps: dict[str, int] = {}
    for op_name in reversed(list(nx.topological_sort(dag))):
        op = cdfg.operation(op_name)
        latest = num_steps - op.delay + 1
        for succ in dag.successors(op_name):
            latest = min(latest, steps[succ] - op.delay)
        steps[op_name] = latest
    return steps


def mobility(cdfg: CDFG, num_steps: int | None = None) -> dict[str, int]:
    """Mobility (slack) per operation: ALAP - ASAP control step."""
    asap = asap_schedule(cdfg)
    alap = alap_schedule(cdfg, num_steps)
    return {o: alap[o] - asap[o] for o in asap}


def cdfg_loops(cdfg: CDFG, bound: int | None = None) -> list[list[str]]:
    """Enumerate CDFG loops as variable cycles.

    Returns a list of loops; each loop is the list of variable names on
    a simple cycle of the variable dependence graph.  ``bound`` caps the
    number of cycles enumerated (cycle counts can blow up on dense
    graphs); loops are enumerated shortest-first when bounded.
    """
    g = cdfg.variable_graph()
    cycles: list[list[str]] = []
    for cyc in nx.simple_cycles(g):
        cycles.append(list(cyc))
        if bound is not None and len(cycles) >= bound:
            break
    cycles.sort(key=len)
    return cycles


def loop_variables(cdfg: CDFG, bound: int | None = None) -> set[str]:
    """All variables lying on at least one CDFG loop."""
    out: set[str] = set()
    for cyc in cdfg_loops(cdfg, bound=bound):
        out.update(cyc)
    return out


def operations_on_loops(cdfg: CDFG, bound: int | None = None) -> set[str]:
    """All operations lying on at least one CDFG loop."""
    g = cdfg.op_graph(include_carried=True)
    out: set[str] = set()
    for cyc in nx.simple_cycles(g):
        out.update(cyc)
        if bound is not None and len(out) >= bound:
            break
    return out


def loops_broken_by(loops: Sequence[Sequence[str]], chosen: Iterable[str]) -> int:
    """How many of ``loops`` contain at least one variable of ``chosen``."""
    chosen_set = set(chosen)
    return sum(1 for loop in loops if chosen_set.intersection(loop))


def unbroken_loops(
    loops: Sequence[Sequence[str]], chosen: Iterable[str]
) -> list[list[str]]:
    """The subset of ``loops`` not cut by any variable in ``chosen``."""
    chosen_set = set(chosen)
    return [list(l) for l in loops if not chosen_set.intersection(l)]


def sequential_depth_estimate(cdfg: CDFG) -> int:
    """Depth (in operations) of the longest input-to-output chain.

    A behavioral proxy for the data-path sequential depth of section
    3.1: before scheduling, the best achievable register-to-register
    depth tracks the operation chain length.
    """
    dag = cdfg.op_graph(include_carried=False)
    if len(dag) == 0:
        return 0
    return nx.dag_longest_path_length(dag) + 1
