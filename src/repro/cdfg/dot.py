"""Graphviz DOT export for CDFGs, S-graphs, and data paths.

Visual inspection is half of DFT debugging; these renderers emit plain
DOT (viewable with ``dot -Tpng`` or any online viewer) with the
testability annotations the library computes: loop membership on CDFG
variables, scan marks and self-loops on S-graph registers.
"""

from __future__ import annotations

import io

import networkx as nx

from repro.cdfg.analysis import loop_variables
from repro.cdfg.graph import CDFG


def _esc(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def cdfg_to_dot(cdfg: CDFG, highlight_loops: bool = True) -> str:
    """Render a CDFG: boxes are operations, ellipses are variables.

    Loop variables are shaded; loop-carried edges are dashed.
    """
    on_loop = loop_variables(cdfg) if highlight_loops else set()
    buf = io.StringIO()
    buf.write(f"digraph {_esc(cdfg.name)} {{\n  rankdir=TB;\n")
    for v in cdfg.variables.values():
        attrs = ["shape=ellipse"]
        if v.is_input:
            attrs.append("style=bold")
            attrs.append('color="blue"')
        elif v.is_output:
            attrs.append("style=bold")
            attrs.append('color="darkgreen"')
        if v.name in on_loop:
            attrs.append("style=filled")
            attrs.append('fillcolor="mistyrose"')
        buf.write(f"  {_esc(v.name)} [{', '.join(attrs)}];\n")
    for op in cdfg:
        label = f"{op.name}\\n{op.kind}"
        buf.write(
            f"  {_esc('op:' + op.name)} [shape=box, label={_esc(label)}];\n"
        )
        for v in op.inputs:
            dashed = ", style=dashed" if v in op.carried else ""
            buf.write(
                f"  {_esc(v)} -> {_esc('op:' + op.name)} [arrowsize=0.7"
                f"{dashed}];\n"
            )
        buf.write(
            f"  {_esc('op:' + op.name)} -> {_esc(op.output)} "
            f"[arrowsize=0.7];\n"
        )
    buf.write("}\n")
    return buf.getvalue()


def sgraph_to_dot(sgraph: nx.DiGraph) -> str:
    """Render an S-graph: registers with I/O and scan annotations."""
    buf = io.StringIO()
    name = sgraph.graph.get("name", "sgraph")
    buf.write(f"digraph {_esc(name)} {{\n  rankdir=LR;\n")
    for n, d in sgraph.nodes(data=True):
        attrs = ["shape=box"]
        if d.get("scan"):
            attrs.append("style=filled")
            attrs.append('fillcolor="gold"')
        elif d.get("is_input") or d.get("is_output"):
            attrs.append("style=bold")
        label = n
        if d.get("width"):
            label += f"\\n{d['width']}b"
        attrs.append(f"label={_esc(label)}")
        buf.write(f"  {_esc(n)} [{', '.join(attrs)}];\n")
    for u, v, d in sgraph.edges(data=True):
        ops = ",".join(d.get("operations", [])[:3])
        buf.write(
            f"  {_esc(u)} -> {_esc(v)} [label={_esc(ops)}, fontsize=8];\n"
        )
    buf.write("}\n")
    return buf.getvalue()


def datapath_to_dot(datapath) -> str:
    """Render a data path: registers, units, and transfers."""
    buf = io.StringIO()
    buf.write(f"digraph {_esc(datapath.name)} {{\n  rankdir=LR;\n")
    for r in datapath.registers:
        attrs = ["shape=box"]
        if r.scan:
            attrs.append("style=filled")
            attrs.append('fillcolor="gold"')
        elif r.is_io_register:
            attrs.append("style=bold")
        label = f"{r.name}\\n{{{','.join(r.variables)}}}"
        attrs.append(f"label={_esc(label)}")
        buf.write(f"  {_esc(r.name)} [{', '.join(attrs)}];\n")
    for u in datapath.units:
        label = f"{u.name}\\n{'/'.join(sorted(u.kinds))}"
        buf.write(
            f"  {_esc(u.name)} [shape=trapezium, label={_esc(label)}];\n"
        )
    seen = set()
    for t in datapath.transfers:
        for src in set(t.source_registers):
            if (src, t.unit) not in seen:
                seen.add((src, t.unit))
                buf.write(f"  {_esc(src)} -> {_esc(t.unit)};\n")
        if (t.unit, t.dest_register) not in seen:
            seen.add((t.unit, t.dest_register))
            buf.write(f"  {_esc(t.unit)} -> {_esc(t.dest_register)};\n")
    buf.write("}\n")
    return buf.getvalue()
