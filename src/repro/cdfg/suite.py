"""Standard HLS benchmark behaviors.

These are the workloads the papers surveyed by Wagner & Dey evaluate on
(data-flow intensive, arithmetic intensive -- see section 7a of the
survey).  Exact-topology reconstructions are used where the topology is
unambiguous (Figure 1, HAL diffeq, FIR, IIR biquad, AR lattice); the
elliptic wave filter is provided as the cascade-form realisation (same
operation mix and loop structure class; the original 34-node flat DFG
is not reproducible from the survey text).  All reconstructions are
documented per-function.

Every function returns a fresh :class:`~repro.cdfg.graph.CDFG`.
"""

from __future__ import annotations

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.graph import CDFG


def figure1(width: int = 8) -> CDFG:
    """The exact CDFG of Figure 1(a) of the survey.

    Two addition chains joined by a final addition::

        c = a + b        (+1)
        e = c + d        (+2)
        g = e + f        (+5)
        r = p + q        (+3)
        t = r + s        (+4)

    Outputs are ``g`` and ``t``.  Under a 3-control-step / 2-adder
    constraint, the binding of Figure 1(b) creates an assignment loop
    while the binding of Figure 1(c) leaves only self-loops.
    """
    b = CDFGBuilder("figure1", width=width)
    b.inputs("a", "b", "d", "f", "p", "q", "s")
    b.outputs("g", "t")
    b.add("a", "b", "c", name="+1")
    b.add("c", "d", "e", name="+2")
    b.add("p", "q", "r", name="+3")
    b.add("r", "s", "t", name="+4")
    b.add("e", "f", "g", name="+5")
    return b.build()


#: The schedule/assignment of Figure 1(b): tuples are
#: (control step, adder).  Creates the assignment loop RA1->RA2->RA1.
FIGURE1_ASSIGNMENT_B = {
    "+1": (1, "A1"),
    "+2": (2, "A2"),
    "+3": (2, "A1"),
    "+4": (3, "A2"),
    "+5": (3, "A1"),
}

#: The schedule/assignment of Figure 1(c): loop-free except self-loops.
FIGURE1_ASSIGNMENT_C = {
    "+1": (1, "A1"),
    "+2": (2, "A1"),
    "+3": (1, "A2"),
    "+4": (2, "A2"),
    "+5": (3, "A1"),
}


def diffeq(loop: bool = False, width: int = 8) -> CDFG:
    """The HAL differential-equation solver (Paulin & Knight).

    Solves ``y'' + 3xy' + 3y = 0`` by forward Euler.  One iteration::

        x1 = x + dx
        u1 = u - 3*x*u*dx - 3*y*dx
        y1 = y + u*dx
        c  = x1 < a

    With ``loop=True`` the state variables feed back (loop-carried),
    which is how the partial-scan papers [24,33] obtain CDFG loops.
    """
    b = CDFGBuilder("diffeq" if not loop else "diffeq_loop", width=width)
    if not loop:
        b.inputs("x", "y", "u", "dx", "a", "three")
        b.outputs("x1", "y1", "u1", "c")
        b.mul("three", "x", "m1", name="*1")
        b.mul("u", "dx", "m2", name="*2")
        b.mul("three", "y", "m3", name="*3")
        b.mul("m1", "m2", "m4", name="*4")
        b.mul("dx", "m3", "m5", name="*5")
        b.mul("u", "dx", "m6", name="*6")
        b.sub("u", "m4", "s1", name="-1")
        b.sub("s1", "m5", "u1", name="-2")
        b.add("x", "dx", "x1", name="+1")
        b.add("y", "m6", "y1", name="+2")
        b.lt("x1", "a", "c", name="<1")
        return b.build()
    # Looped variant: x1/u1/y1 of iteration i feed iteration i+1.
    b.inputs("dx", "a", "three")
    b.outputs("c")
    b.mul("three", "x1", "m1", name="*1", carried=("x1",))
    b.mul("u1", "dx", "m2", name="*2", carried=("u1",))
    b.mul("three", "y1", "m3", name="*3", carried=("y1",))
    b.mul("m1", "m2", "m4", name="*4")
    b.mul("dx", "m3", "m5", name="*5")
    b.mul("u1", "dx", "m6", name="*6", carried=("u1",))
    b.op("-", ("u1", "m4"), "s1", name="-1", carried=("u1",))
    b.sub("s1", "m5", "u1", name="-2")
    b.op("+", ("x1", "dx"), "x1", name="+1", carried=("x1",))
    b.op("+", ("y1", "m6"), "y1", name="+2", carried=("y1",))
    b.lt("x1", "a", "c", name="<1")
    return b.build()


def iir_biquad(sections: int = 2, width: int = 8) -> CDFG:
    """Cascade of direct-form-II IIR biquad sections.

    Each section computes::

        w  = x + a1*w1 + a2*w2      (w1, w2: delayed w -- loop carried)
        y  = b0*w + b1*w1 + b2*w2

    The ``a``-path feedback creates genuine CDFG loops, making this the
    canonical looped workload of the partial-scan literature.
    """
    b = CDFGBuilder(f"iir{sections}", width=width)
    coeffs = []
    for s in range(sections):
        coeffs += [f"a1_{s}", f"a2_{s}", f"b0_{s}", f"b1_{s}", f"b2_{s}"]
    b.inputs("x0", *coeffs)
    b.outputs(f"y{sections - 1}")
    prev = "x0"
    for s in range(sections):
        w, w1, w2 = f"w{s}", f"w1_{s}", f"w2_{s}"
        # Delay line: w1 = z^-1(w), w2 = z^-1(w1): carried copies
        # implemented as identity additions with a shared zero input.
        if s == 0:
            b.inputs("zero")
        b.op("+", (w, "zero"), w1, name=f"z1_{s}", carried=(w,))
        b.op("+", (w1, "zero"), w2, name=f"z2_{s}", carried=(w1,))
        b.mul(f"a1_{s}", w1, f"fa1_{s}", name=f"*a1_{s}")
        b.mul(f"a2_{s}", w2, f"fa2_{s}", name=f"*a2_{s}")
        b.add(f"fa1_{s}", f"fa2_{s}", f"fb_{s}", name=f"+fb_{s}")
        b.add(prev, f"fb_{s}", w, name=f"+w_{s}")
        b.mul(f"b0_{s}", w, f"g0_{s}", name=f"*b0_{s}")
        b.mul(f"b1_{s}", w1, f"g1_{s}", name=f"*b1_{s}")
        b.mul(f"b2_{s}", w2, f"g2_{s}", name=f"*b2_{s}")
        b.add(f"g0_{s}", f"g1_{s}", f"h_{s}", name=f"+h_{s}")
        b.add(f"h_{s}", f"g2_{s}", f"y{s}", name=f"+y_{s}")
        prev = f"y{s}"
    return b.build()


def ewf(width: int = 8) -> CDFG:
    """Fifth-order elliptic wave filter, cascade-form realisation.

    The classic EWF benchmark is a 34-add / 8-multiply wave digital
    filter with 8 delay (loop-carried) elements.  The flat 34-node DFG
    cannot be recovered from the survey; this reconstruction cascades a
    first-order section with two biquads (same delay count class, same
    looped structure, comparable operation mix: 26 additions via the
    delay-line identities plus filter adds, 10 multiplications), which
    is the standard alternative realisation of the same transfer
    function family.
    """
    b = CDFGBuilder("ewf", width=width)
    b.inputs("x0", "zero", "k0")
    b.outputs("yout")
    # first-order section: w = x + k0*w1 ; y = w + w1
    b.op("+", ("w", "zero"), "w1", name="z_0", carried=("w",))
    b.mul("k0", "w1", "f0", name="*k0")
    b.add("x0", "f0", "w", name="+w0")
    b.add("w", "w1", "y0", name="+y0")
    prev = "y0"
    for s in (1, 2):
        a1, a2, b0, b1_, b2 = (f"a1_{s}", f"a2_{s}", f"b0_{s}",
                               f"b1_{s}", f"b2_{s}")
        b.inputs(a1, a2, b0, b1_, b2)
        w, w1, w2 = f"w_{s}", f"w1_{s}", f"w2_{s}"
        b.op("+", (w, "zero"), w1, name=f"z1_{s}", carried=(w,))
        b.op("+", (w1, "zero"), w2, name=f"z2_{s}", carried=(w1,))
        b.mul(a1, w1, f"fa1_{s}", name=f"*a1_{s}")
        b.mul(a2, w2, f"fa2_{s}", name=f"*a2_{s}")
        b.add(f"fa1_{s}", f"fa2_{s}", f"fb_{s}", name=f"+fb_{s}")
        b.add(prev, f"fb_{s}", w, name=f"+w_{s}")
        b.mul(b0, w, f"g0_{s}", name=f"*b0_{s}")
        b.mul(b1_, w1, f"g1_{s}", name=f"*b1_{s}")
        b.mul(b2, w2, f"g2_{s}", name=f"*b2_{s}")
        b.add(f"g0_{s}", f"g1_{s}", f"h1_{s}", name=f"+h1_{s}")
        b.add(f"h1_{s}", f"g2_{s}", f"h2_{s}", name=f"+h2_{s}")
        prev = f"h2_{s}"
    b.add(prev, "zero", "yout", name="+out")
    return b.build()


def fir(taps: int = 8, width: int = 8) -> CDFG:
    """Transversal FIR filter with a loop-carried tap delay line.

    Loop-free (the delay line is a chain, not a cycle): the acyclic
    counterpoint to :func:`iir_biquad` in the scan-selection benches.
    """
    b = CDFGBuilder(f"fir{taps}", width=width)
    b.inputs("x", "zero", *[f"b{i}" for i in range(taps)])
    b.outputs("y")
    prev_tap = "x"
    products = []
    for i in range(taps):
        b.mul(f"b{i}", prev_tap, f"p{i}", name=f"*t{i}")
        products.append(f"p{i}")
        if i < taps - 1:
            tap = f"x{i + 1}"
            b.op("+", (prev_tap, "zero"), tap, name=f"z{i}",
                 carried=(prev_tap,))
            prev_tap = tap
    acc = products[0]
    for i, p in enumerate(products[1:], start=1):
        nxt = "y" if i == taps - 1 else f"s{i}"
        b.add(acc, p, nxt, name=f"+s{i}")
        acc = nxt
    return b.build()


def ar_lattice(stages: int = 4, width: int = 8) -> CDFG:
    """All-pole (AR synthesis) lattice filter.

    Per stage ``i`` (from input side)::

        f_{i-1} = f_i + k_i * b_{i-1}^     (^ = delayed, loop carried)
        b_i     = b_{i-1}^ - k_i * f_{i-1}

    The feedback through the delayed backward-prediction path creates a
    nest of CDFG loops of increasing length -- the workload class used
    by [33] to stress loop-breaking.
    """
    b = CDFGBuilder(f"ar{stages}", width=width)
    b.inputs("e_in", "zero", *[f"k{i}" for i in range(1, stages + 1)])
    b.outputs("s_out", f"b_top")
    f_cur = "e_in"
    for i in range(stages, 0, -1):
        bprev_d = f"bd{i - 1}"  # delayed b_{i-1}
        b.op("+", (f"b{i - 1}", "zero"), bprev_d, name=f"z{i - 1}",
             carried=(f"b{i - 1}",))
        b.mul(f"k{i}", bprev_d, f"kb{i}", name=f"*kb{i}")
        f_next = f"f{i - 1}"
        b.add(f_cur, f"kb{i}", f_next, name=f"+f{i - 1}")
        b.mul(f"k{i}", f_next, f"kf{i}", name=f"*kf{i}")
        b.sub(bprev_d, f"kf{i}", f"b{i}" if i < stages else "b_top",
              name=f"-b{i}")
        f_cur = f_next
    # b_0 is the filter output (also feeds the delay of stage 1).
    b.add(f_cur, "zero", "b0", name="+b0")
    b.add("b0", "zero", "s_out", name="+out")
    return b.build()


def tseng(width: int = 8) -> CDFG:
    """The Tseng & Siewiorek 'facet' example (reconstruction).

    Small mixed-operator DFG used widely in allocation papers: three
    parallel chains over shared inputs with one reconvergence.
    """
    b = CDFGBuilder("tseng", width=width)
    b.inputs("a", "b", "cc", "d", "e")
    b.outputs("o1", "o2", "o3")
    b.add("a", "b", "t1", name="+1")
    b.op("&", ("cc", "d"), "t2", name="&1")
    b.mul("t1", "e", "t3", name="*1")
    b.sub("t1", "t2", "t4", name="-1")
    b.op("|", ("t3", "t4"), "o1", name="|1")
    b.add("t2", "e", "o2", name="+2")
    b.sub("t3", "a", "o3", name="-2")
    return b.build()


def matmul2(width: int = 8) -> CDFG:
    """2x2 matrix multiply: the arithmetic-intensive kernel class.

    Eight multiplications and four additions, fully parallel -- the
    op-mix extreme opposite of :func:`gcd`, useful for the arithmetic
    BIST and binding experiments.
    """
    b = CDFGBuilder("matmul2", width=width)
    b.inputs(*[f"a{i}{j}" for i in range(2) for j in range(2)],
             *[f"b{i}{j}" for i in range(2) for j in range(2)])
    b.outputs(*[f"c{i}{j}" for i in range(2) for j in range(2)])
    for i in range(2):
        for j in range(2):
            b.mul(f"a{i}0", f"b0{j}", f"p{i}{j}0", name=f"*{i}{j}0")
            b.mul(f"a{i}1", f"b1{j}", f"p{i}{j}1", name=f"*{i}{j}1")
            b.add(f"p{i}{j}0", f"p{i}{j}1", f"c{i}{j}", name=f"+{i}{j}")
    return b.build()


def dct4(width: int = 8) -> CDFG:
    """4-point DCT butterfly (Chen-style decomposition).

    Stage 1 butterflies (adds/subs) feeding coefficient
    multiplications: a reconvergent, acyclic arithmetic kernel.
    """
    b = CDFGBuilder("dct4", width=width)
    b.inputs("x0", "x1", "x2", "x3", "c1", "c2", "c3")
    b.outputs("y0", "y1", "y2", "y3")
    b.add("x0", "x3", "s0", name="+s0")
    b.add("x1", "x2", "s1", name="+s1")
    b.sub("x0", "x3", "d0", name="-d0")
    b.sub("x1", "x2", "d1", name="-d1")
    b.add("s0", "s1", "t0", name="+t0")
    b.sub("s0", "s1", "t1", name="-t1")
    b.mul("t0", "c1", "y0", name="*y0")
    b.mul("t1", "c2", "y2", name="*y2")
    b.mul("d0", "c1", "m0", name="*m0")
    b.mul("d1", "c3", "m1", name="*m1")
    b.add("m0", "m1", "y1", name="+y1")
    b.sub("m0", "m1", "y3", name="-y3")
    return b.build()


def gcd(width: int = 8) -> CDFG:
    """Euclid's GCD -- the control-flow-intensive counterpoint.

    Survey section 7a notes the surveyed techniques "are mostly
    applicable to data-flow intensive and arithmetic intensive designs"
    and need evolving for control-flow-oriented ones; this behavior is
    the classic control-dominated benchmark: one iteration of::

        swap = b > a
        big  = swap ? b : a
        small= swap ? a : b
        diff = big - small
        done = small == 0
        a'   = small   (loop-carried)
        b'   = diff    (loop-carried)

    All state flows through select operations, so loops pass through
    control-steered multiplexers rather than arithmetic chains.
    """
    b = CDFGBuilder("gcd", width=width)
    b.inputs("a0", "b0", "zero")
    b.outputs("done", "result")
    # State a1/b1 carried across iterations; seeded by the primary
    # inputs through selects on a 'first' flag modelled as zero compare.
    b.op(">", ("b1", "a1"), "swap", name=">1",
         carried=("a1", "b1"))
    b.op("select", ("swap", "b1", "a1"), "big", name="sel_big",
         carried=("a1", "b1"))
    b.op("select", ("swap", "a1", "b1"), "small", name="sel_small",
         carried=("a1", "b1"))
    b.op("-", ("big", "small"), "diff", name="-1")
    b.op("==", ("small", "zero"), "done", name="==1")
    b.op("+", ("small", "a0"), "a1", name="+a")
    b.op("+", ("diff", "b0"), "b1", name="+b")
    b.op("+", ("big", "zero"), "result", name="+r")
    return b.build()


def standard_suite(looped_only: bool = False, width: int = 8) -> dict[str, CDFG]:
    """The benchmark suite used across the experiment harness.

    With ``looped_only=True``, returns only behaviors that contain CDFG
    loops (the scan-selection experiments are only meaningful there).
    """
    looped = {
        "diffeq_loop": diffeq(loop=True, width=width),
        "iir2": iir_biquad(2, width=width),
        "iir3": iir_biquad(3, width=width),
        "ewf": ewf(width=width),
        "ar4": ar_lattice(4, width=width),
        "ar6": ar_lattice(6, width=width),
        "gcd": gcd(width=width),
    }
    if looped_only:
        return looped
    out = {
        "figure1": figure1(width=width),
        "diffeq": diffeq(width=width),
        "fir8": fir(8, width=width),
        "tseng": tseng(width=width),
        "matmul2": matmul2(width=width),
        "dct4": dct4(width=width),
    }
    out.update(looped)
    return out
