"""Core CDFG data model.

A :class:`CDFG` holds *operations* and *variables*.  Data dependencies are
implied by variables: an operation consumes its input variables and
produces exactly one output variable.  A dependency may be *loop
carried* -- the consumer reads the value produced in the *previous*
iteration of the behavior.  Loop-carried dependencies are what create
the behavioral loops discussed in section 3.3.1 of the survey: every
cycle in the data-dependency graph passes through at least one carried
edge (otherwise the behavior would not be computable).

The model deliberately mirrors what the surveyed papers assume:

* single-assignment variables (each variable has at most one producer);
* single-output operations;
* commutative/associative knowledge carried by the operation *kind*
  (used by the deflection-operation transform of [16]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import networkx as nx

#: Operation kinds with an identity element usable for deflection
#: operations ([16]): ``op(x, identity) == x``.
IDENTITY_ELEMENTS: Mapping[str, int] = {
    "+": 0,
    "-": 0,
    "*": 1,
    "|": 0,
    "^": 0,
}

#: Kinds whose gate-level realisation is an ALU-class unit (used by
#: module allocation); comparison and selection are handled separately.
ARITHMETIC_KINDS = frozenset({"+", "-", "*", "<", ">", "==", "&", "|", "^", ">>", "<<"})

#: Kinds that commute in their two data operands.
COMMUTATIVE_KINDS = frozenset({"+", "*", "&", "|", "^", "=="})


class CDFGError(ValueError):
    """Raised for structurally invalid CDFG constructions."""


@dataclass(frozen=True)
class Variable:
    """A single-assignment behavioral variable.

    Parameters
    ----------
    name:
        Unique identifier within the CDFG.
    width:
        Bit width of the value; the gate-level expansion uses this.
    is_input:
        True when the variable is a primary input of the behavior.
    is_output:
        True when the variable is a primary output of the behavior.
    """

    name: str
    width: int = 8
    is_input: bool = False
    is_output: bool = False

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise CDFGError(f"variable {self.name!r}: width must be positive")


@dataclass(frozen=True)
class Operation:
    """A behavioral operation.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"+1"``.
    kind:
        Operator symbol (``"+"``, ``"*"``, ``"select"``, ...).
    inputs:
        Names of the input variables, in port order.
    output:
        Name of the produced variable.
    carried:
        Subset of ``inputs`` that are loop-carried: the operation reads
        the value produced in the previous iteration.  Carried inputs do
        not constrain the schedule but do close CDFG loops.
    delay:
        Latency in control steps (>= 1).  Multipliers are commonly 2.
    """

    name: str
    kind: str
    inputs: tuple[str, ...]
    output: str
    carried: frozenset[str] = frozenset()
    delay: int = 1

    def __post_init__(self) -> None:
        if self.delay < 1:
            raise CDFGError(f"operation {self.name!r}: delay must be >= 1")
        if not self.inputs:
            raise CDFGError(f"operation {self.name!r}: needs at least one input")
        extra = set(self.carried) - set(self.inputs)
        if extra:
            raise CDFGError(
                f"operation {self.name!r}: carried names {sorted(extra)} "
                "are not inputs"
            )

    @property
    def is_commutative(self) -> bool:
        return self.kind in COMMUTATIVE_KINDS

    def sequencing_inputs(self) -> tuple[str, ...]:
        """Inputs that impose intra-iteration precedence (not carried)."""
        return tuple(v for v in self.inputs if v not in self.carried)


class CDFG:
    """A control-data flow graph.

    The graph is built incrementally through :meth:`add_variable` and
    :meth:`add_operation` (or, more conveniently, via
    :class:`~repro.cdfg.builder.CDFGBuilder`).  It exposes producer /
    consumer maps and conversions to :mod:`networkx` graphs for
    analysis.
    """

    def __init__(self, name: str = "cdfg") -> None:
        self.name = name
        self._variables: dict[str, Variable] = {}
        self._operations: dict[str, Operation] = {}
        self._producer: dict[str, str] = {}  # variable -> op name
        self._consumers: dict[str, list[str]] = {}  # variable -> op names

    # ------------------------------------------------------------------
    # construction

    def add_variable(self, variable: Variable) -> Variable:
        if variable.name in self._variables:
            raise CDFGError(f"duplicate variable {variable.name!r}")
        self._variables[variable.name] = variable
        self._consumers.setdefault(variable.name, [])
        return variable

    def add_operation(self, operation: Operation) -> Operation:
        if operation.name in self._operations:
            raise CDFGError(f"duplicate operation {operation.name!r}")
        for v in operation.inputs + (operation.output,):
            if v not in self._variables:
                raise CDFGError(
                    f"operation {operation.name!r} references unknown "
                    f"variable {v!r}"
                )
        out = self._variables[operation.output]
        if out.is_input:
            raise CDFGError(
                f"operation {operation.name!r} writes primary input {out.name!r}"
            )
        if operation.output in self._producer:
            raise CDFGError(
                f"variable {operation.output!r} already produced by "
                f"{self._producer[operation.output]!r} (single assignment)"
            )
        self._operations[operation.name] = operation
        self._producer[operation.output] = operation.name
        for v in operation.inputs:
            self._consumers[v].append(operation.name)
        return operation

    # ------------------------------------------------------------------
    # accessors

    @property
    def variables(self) -> Mapping[str, Variable]:
        return self._variables

    @property
    def operations(self) -> Mapping[str, Operation]:
        return self._operations

    def variable(self, name: str) -> Variable:
        return self._variables[name]

    def operation(self, name: str) -> Operation:
        return self._operations[name]

    def producer_of(self, variable: str) -> Operation | None:
        """The operation producing ``variable`` (None for primary inputs)."""
        op = self._producer.get(variable)
        return self._operations[op] if op is not None else None

    def consumers_of(self, variable: str) -> list[Operation]:
        return [self._operations[o] for o in self._consumers.get(variable, ())]

    def primary_inputs(self) -> list[Variable]:
        return [v for v in self._variables.values() if v.is_input]

    def primary_outputs(self) -> list[Variable]:
        return [v for v in self._variables.values() if v.is_output]

    def intermediate_variables(self) -> list[Variable]:
        return [
            v
            for v in self._variables.values()
            if not v.is_input and not v.is_output
        ]

    def kinds(self) -> set[str]:
        """All operation kinds used by this behavior."""
        return {op.kind for op in self._operations.values()}

    def operations_of_kind(self, kind: str) -> list[Operation]:
        return [op for op in self._operations.values() if op.kind == kind]

    # ------------------------------------------------------------------
    # validation & graph views

    def validate(self) -> None:
        """Raise :class:`CDFGError` unless the CDFG is well formed.

        Checks: every non-input variable has a producer; every
        non-output variable has a consumer (no dead code); the
        intra-iteration dependence graph (carried edges removed) is
        acyclic -- a cyclic one would describe an uncomputable behavior.
        """
        for v in self._variables.values():
            if not v.is_input and v.name not in self._producer:
                raise CDFGError(f"variable {v.name!r} has no producer")
            if (
                not v.is_output
                and not v.is_input  # an unconsumed PI is an unused port
                and not self._consumers.get(v.name)
            ):
                raise CDFGError(f"variable {v.name!r} is never consumed")
        dag = self.op_graph(include_carried=False)
        if not nx.is_directed_acyclic_graph(dag):
            cycle = nx.find_cycle(dag)
            raise CDFGError(
                "intra-iteration dependence cycle (missing 'carried' "
                f"annotation?): {cycle}"
            )

    def op_graph(self, include_carried: bool = True) -> nx.DiGraph:
        """Operation-level dependence graph.

        Nodes are operation names.  There is an edge ``p -> c`` when
        ``c`` consumes the variable produced by ``p``.  Edges caused by
        loop-carried inputs get attribute ``carried=True`` and are
        omitted when ``include_carried`` is False (that projection is
        the scheduling DAG).
        """
        g = nx.DiGraph()
        g.add_nodes_from(self._operations)
        for c in self._operations.values():
            for v in c.inputs:
                p = self._producer.get(v)
                if p is None:
                    continue
                carried = v in c.carried
                if carried and not include_carried:
                    continue
                # Do not overwrite a non-carried edge with a carried one.
                if g.has_edge(p, c.name) and not g[p][c.name]["carried"]:
                    continue
                g.add_edge(p, c.name, carried=carried, variable=v)
        return g

    def variable_graph(self) -> nx.DiGraph:
        """Variable-level dependence graph.

        Nodes are variable names.  There is an edge ``u -> w`` when some
        operation consumes ``u`` and produces ``w``.  Cycles in this
        graph are exactly the CDFG loops of section 3.3.1.
        """
        g = nx.DiGraph()
        g.add_nodes_from(self._variables)
        for op in self._operations.values():
            for v in op.inputs:
                g.add_edge(v, op.output, operation=op.name,
                           carried=v in op.carried)
        return g

    # ------------------------------------------------------------------
    # misc

    def copy(self, name: str | None = None) -> "CDFG":
        out = CDFG(name or self.name)
        for v in self._variables.values():
            out.add_variable(v)
        for op in self._operations.values():
            out.add_operation(op)
        return out

    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations.values())

    def __repr__(self) -> str:
        return (
            f"CDFG({self.name!r}, ops={len(self._operations)}, "
            f"vars={len(self._variables)})"
        )
