"""The :class:`Flow` DAG: stages wired by named artifacts.

Artifacts form a flat namespace per flow.  Each artifact is produced by
exactly one stage (or supplied as a flow-level input at run time); a
stage consumes artifacts by listing their names in ``inputs``.  The
graph structure is implied entirely by those names -- there is no
separate edge list to keep in sync.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.flow.stage import Stage


class FlowDefinitionError(ValueError):
    """The flow is not a well-formed DAG."""


class Flow:
    """A named DAG of :class:`Stage` objects."""

    def __init__(self, name: str, stages: Iterable[Stage] = ()) -> None:
        self.name = name
        self.stages: dict[str, Stage] = {}
        for s in stages:
            self.add(s)

    def add(self, stage: Stage) -> Stage:
        if stage.name in self.stages:
            raise FlowDefinitionError(
                f"duplicate stage name {stage.name!r} in flow {self.name!r}"
            )
        self.stages[stage.name] = stage
        return stage

    def stage(self, name: str, fn, **kwargs) -> Stage:
        """Declare-and-add convenience."""
        return self.add(Stage(name, fn, **kwargs))

    # -- structure ---------------------------------------------------

    def producers(self) -> dict[str, Stage]:
        """artifact name -> producing stage (unique by validation)."""
        out: dict[str, Stage] = {}
        for s in self.stages.values():
            for a in s.outputs:
                if a in out:
                    raise FlowDefinitionError(
                        f"artifact {a!r} produced by both "
                        f"{out[a].name!r} and {s.name!r}"
                    )
                out[a] = s
        return out

    def external_inputs(self) -> set[str]:
        """Artifacts consumed but produced by no stage."""
        produced = set(self.producers())
        return {
            a for s in self.stages.values() for a in s.inputs
            if a not in produced
        }

    def dependencies(self) -> dict[str, set[str]]:
        """stage name -> names of stages it depends on."""
        producers = self.producers()
        return {
            s.name: {
                producers[a].name for a in s.inputs if a in producers
            }
            for s in self.stages.values()
        }

    def topo_order(self) -> list[Stage]:
        deps = self.dependencies()
        done: set[str] = set()
        order: list[str] = []
        ready = sorted(n for n, d in deps.items() if not d)
        while ready:
            n = ready.pop(0)
            order.append(n)
            done.add(n)
            for m, d in deps.items():
                if m not in done and m not in ready and d <= done:
                    ready.append(m)
            ready.sort()
        if len(order) != len(deps):
            raise FlowDefinitionError(
                f"flow {self.name!r} has a dependency cycle through "
                f"{sorted(set(deps) - done)}"
            )
        return [self.stages[n] for n in order]

    def validate(self, inputs: Mapping[str, Any] | None = None) -> None:
        """Raise :class:`FlowDefinitionError` on structural problems."""
        if not self.stages:
            raise FlowDefinitionError(f"flow {self.name!r} has no stages")
        self.producers()          # duplicate-output check
        self.topo_order()         # cycle check
        missing = self.external_inputs() - set(inputs or {})
        if missing:
            raise FlowDefinitionError(
                f"flow {self.name!r} needs external inputs "
                f"{sorted(missing)} that were not supplied"
            )

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Flow({self.name!r}, {len(self.stages)} stages)"
