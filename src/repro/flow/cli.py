"""Command-line driver for the flow engine.

Usage::

    python -m repro.flow list [--json]
    python -m repro.flow run figure1
    python -m repro.flow run fullscan --jobs 4 --metrics out.json
    python -m repro.flow run report --param design=iir2 --no-cache
    python -m repro.flow serve [--port N] [--prewarm flow,flow]
    python -m repro.flow clean
    python -m repro.flow fsck [--remove]
    python -m repro.flow knobs
"""

from __future__ import annotations

import argparse
import ast
import json
import sys

from repro.flow.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR, FlowCache
from repro.flow.flows import describe_flows, get_flow
from repro.flow.metrics import render_table
from repro.flow.runner import FlowError, Runner, format_failure, \
    is_unavailable


def _parse_params(pairs: list[str]) -> dict:
    params = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        try:
            params[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            params[key] = raw
    return params


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.flow",
        description="Run the library's synthesis→test pipelines as "
                    "cached, parallel flows.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser(
        "list",
        help="list flows with their accepted params and description",
    )
    p_list.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable listing (the same "
                             "payload the service serves at /flows)")

    p_run = sub.add_parser("run", help="execute a flow")
    p_run.add_argument("flow", help="flow name (see `list`)")
    p_run.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default: 1, serial)")
    p_run.add_argument("--no-cache", action="store_true",
                       help="recompute every stage")
    p_run.add_argument("--cache-dir", default=None,
                       help=f"cache directory (default: "
                            f"${CACHE_DIR_ENV} or {DEFAULT_CACHE_DIR})")
    p_run.add_argument("--metrics", metavar="FILE", default=None,
                       help="dump per-stage metrics as JSON")
    p_run.add_argument("--param", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="flow builder parameter (repeatable)")
    p_run.add_argument("--quiet", action="store_true",
                       help="suppress the artifact rendering")

    p_clean = sub.add_parser("clean", help="drop the artifact cache")
    p_clean.add_argument("--cache-dir", default=None)

    p_fsck = sub.add_parser(
        "fsck", help="scan the cache and quarantine corrupt entries"
    )
    p_fsck.add_argument("--cache-dir", default=None)
    p_fsck.add_argument("--remove", action="store_true",
                        help="delete corrupt/quarantined entries instead "
                             "of keeping them aside")

    sub.add_parser("knobs", help="list the REPRO_* environment knobs")

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived testability service (repro.serve)",
    )
    p_serve.add_argument("--host", default=None,
                         help="bind address (default: $REPRO_SERVE_HOST "
                              "or 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=None,
                         help="TCP port, 0 picks a free one (default: "
                              "$REPRO_SERVE_PORT or 8351)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="concurrent flow executions "
                              "(default: $REPRO_SERVE_WORKERS or 2)")
    p_serve.add_argument("--jobs", type=int, default=None,
                         help="warm-pool worker processes "
                              "(default: $REPRO_SERVE_JOBS or 2)")
    p_serve.add_argument("--queue", type=int, default=None,
                         help="admission-control queue depth "
                              "(default: $REPRO_SERVE_QUEUE or 64)")
    p_serve.add_argument("--cache-dir", default=None,
                         help=f"shared flow cache (default: "
                              f"${CACHE_DIR_ENV} or {DEFAULT_CACHE_DIR})")
    p_serve.add_argument("--prewarm", default=None, metavar="FLOW,FLOW",
                         help="flows whose recipe keys (and the worker "
                              "pool) are warmed before serving; "
                              "'all' warms every registered flow")

    args = parser.parse_args(argv)

    if args.command == "list":
        described = describe_flows()
        if args.as_json:
            print(json.dumps(described, indent=2))
            return 0
        rows = [
            (d["name"],
             " ".join(f"{k}={v}" for k, v in d["params"].items()) or "-",
             d["description"] or "-")
            for d in described
        ]
        print(render_table(["flow", "params (defaults)", "description"],
                           rows))
        return 0

    if args.command == "serve":
        from repro.serve.server import serve_forever

        return serve_forever(
            host=args.host, port=args.port, workers=args.workers,
            jobs=args.jobs, queue_limit=args.queue,
            cache_dir=args.cache_dir, prewarm=args.prewarm,
        )

    if args.command == "clean":
        n = FlowCache(args.cache_dir).clear()
        print(f"removed {n} cache entries")
        return 0

    if args.command == "fsck":
        cache = FlowCache(args.cache_dir)
        report = cache.fsck(remove=args.remove)
        for path in report["corrupt"]:
            print(f"corrupt: {path}")
        print(f"{report['ok']} ok, {len(report['corrupt'])} corrupt, "
              f"{len(report['quarantined'])} quarantined, "
              f"{report['removed']} removed ({cache.root})")
        # Non-zero when anything was wrong, so CI jobs and campaign
        # scripts can gate on cache health.
        return 1 if (report["corrupt"] or report["quarantined"]) else 0

    if args.command == "knobs":
        from repro.knobs import KNOWN_KNOBS

        rows = [(name, kind, default, desc)
                for name, (kind, default, desc)
                in sorted(KNOWN_KNOBS.items())]
        print(render_table(["knob", "type", "default", "what it does"],
                           rows))
        return 0

    try:
        flow = get_flow(args.flow, **_parse_params(args.param))
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    cache = None if args.no_cache else FlowCache(args.cache_dir)
    runner = Runner(cache=cache)
    try:
        result = runner.run(
            flow, jobs=args.jobs, metrics_path=args.metrics
        )
    except FlowError as exc:
        print(f"flow {flow.name!r} failed: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:  # surface stage tracebacks compactly
        print(f"flow {flow.name!r} crashed: {format_failure(exc)}",
              file=sys.stderr)
        return 1

    if not args.quiet:
        sys.stdout.write(render_artifacts(result))
    print(result.metrics.render(), file=sys.stderr)
    degraded = sorted(
        a for a, v in result.artifacts.items() if is_unavailable(v)
    )
    if degraded:
        print(f"degraded artifacts: {', '.join(degraded)}",
              file=sys.stderr)
        return 1
    return 0


def render_artifacts(result) -> str:
    """The flow's human-facing artifacts (table specs / text) as text.

    Shared by the CLI (printed to stdout) and the service layer (the
    ``rendered`` field of a job result), so a served result is
    byte-identical to a direct ``python -m repro.flow run``.
    """
    lines: list[str] = []
    for name, value in result.artifacts.items():
        if is_unavailable(value):
            continue
        if isinstance(value, dict) and {"header", "rows"} <= set(value):
            title = value.get("title", name)
            exp = value.get("experiment", "")
            lines.append(f"== {exp}: {title} ==" if exp else
                         f"== {title} ==")
            lines.append(render_table(value["header"], value["rows"]))
            for note in value.get("notes", ()):
                lines.append(f"note: {note}")
        elif name == "text" and isinstance(value, str):
            lines.append(value[:-1] if value.endswith("\n") else value)
    return "\n".join(lines) + "\n" if lines else ""


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
