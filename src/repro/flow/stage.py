"""Flow stages: the unit of work the engine schedules and caches.

A :class:`Stage` wraps a *pure*, picklable, module-level function.  The
function receives its declared input artifacts plus its static params
as keyword arguments and returns the artifacts it produces -- either a
``dict`` keyed by output name, or (when the stage declares exactly one
output) the bare value.

Purity matters twice: the runner may execute the stage in a worker
process (so the function and its inputs travel through pickle), and the
cache may replay a previous result instead of calling the function at
all.  A stage that mutates its inputs or reads ambient state breaks
both; stages that need configuration take it via ``params`` so it
participates in the cache key.

Cache keying ingredients carried by the stage itself:

``version``
    an explicit code-version string; bump it to invalidate cached
    results when the stage's semantics change in a way source
    fingerprinting cannot see (e.g. a data file it reads).
``code_deps``
    dotted module names whose source the stage's result depends on
    (packages are hashed recursively).  Touching any of those modules
    changes the stage's fingerprint, so only the stages that declare
    the touched module -- and everything downstream of them -- recompute.

``timeout`` is enforced when the stage runs in a worker process
(parallel mode); in-process serial execution cannot pre-empt a running
stage, so there the timeout is advisory and only recorded in metrics.
"""

from __future__ import annotations

import hashlib
import inspect
import pathlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Mapping, Sequence


def _sha(data: str | bytes) -> str:
    if isinstance(data, str):
        data = data.encode("utf-8", "replace")
    return hashlib.sha256(data).hexdigest()


@lru_cache(maxsize=None)
def module_fingerprint(dotted: str) -> str:
    """Stable hash of a module's source (recursive for packages)."""
    import importlib

    mod = importlib.import_module(dotted)
    path = getattr(mod, "__file__", None)
    pkg_paths = getattr(mod, "__path__", None)
    chunks: list[str] = []
    if pkg_paths:
        for root in sorted(set(pkg_paths)):
            for p in sorted(pathlib.Path(root).rglob("*.py")):
                chunks.append(f"{p.relative_to(root)}:{_sha(p.read_bytes())}")
    elif path and pathlib.Path(path).exists():
        chunks.append(_sha(pathlib.Path(path).read_bytes()))
    else:  # builtin / frozen: fall back to the module repr
        chunks.append(repr(mod))
    return _sha("\n".join(chunks))


def function_fingerprint(fn: Callable[..., Any]) -> str:
    """Stable hash of a function's own source (bytecode fallback)."""
    try:
        return _sha(inspect.getsource(fn))
    except (OSError, TypeError):
        code = getattr(fn, "__code__", None)
        if code is not None:
            return _sha(code.co_code)
        return _sha(repr(fn))


@dataclass
class Stage:
    """One node of a flow DAG."""

    name: str
    fn: Callable[..., Any]
    inputs: Sequence[str] | Mapping[str, str] = ()
    outputs: Sequence[str] = ()
    params: Mapping[str, Any] = field(default_factory=dict)
    version: str = "1"
    code_deps: Sequence[str] = ()
    optional: bool = False
    timeout: float | None = None
    retries: int = 0
    cacheable: bool = True

    def __post_init__(self) -> None:
        # ``inputs`` is either a sequence of artifact names (passed to
        # the function under those names) or a mapping of function
        # parameter name -> artifact name, for stages reused across
        # fan-out where artifact names carry a per-case suffix.
        if isinstance(self.inputs, Mapping):
            self.input_map = dict(self.inputs)
        else:
            self.input_map = {a: a for a in self.inputs}
        self.inputs = tuple(self.input_map.values())
        self.outputs = tuple(self.outputs)
        self.params = dict(self.params)
        self.code_deps = tuple(self.code_deps)
        if not self.outputs:
            raise ValueError(f"stage {self.name!r} declares no outputs")
        clash = set(self.input_map) & set(self.params)
        if clash:
            raise ValueError(
                f"stage {self.name!r}: params shadow inputs {sorted(clash)}"
            )

    def fingerprint(self) -> str:
        """Code-version component of this stage's cache key."""
        parts = [self.version, function_fingerprint(self.fn)]
        parts.extend(module_fingerprint(d) for d in self.code_deps)
        return _sha("|".join(parts))

    def call(self, inputs: Mapping[str, Any]) -> dict[str, Any]:
        """Invoke the stage function and normalise its return value."""
        kwargs = {
            param: inputs[artifact]
            for param, artifact in self.input_map.items()
        }
        result = self.fn(**kwargs, **self.params)
        if len(self.outputs) == 1 and not (
            isinstance(result, dict)
            and set(result.keys()) == set(self.outputs)
        ):
            result = {self.outputs[0]: result}
        if not isinstance(result, dict):
            raise TypeError(
                f"stage {self.name!r} must return a dict of artifacts, "
                f"got {type(result).__name__}"
            )
        missing = set(self.outputs) - set(result)
        if missing:
            raise ValueError(
                f"stage {self.name!r} did not produce {sorted(missing)}"
            )
        return {k: result[k] for k in self.outputs}
