"""Flow execution: serial or process-pool parallel, cached, observable.

The runner walks a :class:`~repro.flow.graph.Flow` in dependency order.
Every stage key is computed *before* anything runs (keys depend only on
code fingerprints, params, and upstream keys -- never on artifact
bytes), so cache lookups are pure dictionary probes and a warm rerun
touches no domain code at all.

Execution modes:

``jobs <= 1``
    in-process, stages in deterministic topological order.  Inputs are
    deep-copied before each stage call so an impure stage cannot leak
    mutations into sibling stages -- the same isolation pickling gives
    worker processes, keeping serial and parallel runs bit-identical.
``jobs > 1``
    a ``ProcessPoolExecutor`` runs every ready stage concurrently;
    results merge deterministically because artifacts are keyed by
    name and each has exactly one producer.

Failure policy per stage: up to ``retries`` re-runs (with seeded
exponential backoff + jitter derived from the stage's recipe key, so
the schedule is deterministic); a stage that still fails either aborts
the flow (:class:`FlowError`) or -- when marked ``optional`` --
publishes :class:`Unavailable` markers for its outputs, and every
stage downstream of an unavailable artifact is skipped rather than run
on garbage.

Resilience (parallel mode; see :mod:`repro.flow.resilience`):

* **worker death** -- a broken pool (``BrokenProcessPool``) is torn
  down and rebuilt, and every in-flight stage is re-dispatched without
  consuming its retry budget (the victim of a dead sibling is
  indistinguishable from the culprit).  After
  ``pool_failure_limit`` *consecutive* pool deaths the runner stops
  trusting pools and finishes the remaining stages serially --
  bit-identical results, recorded as ``serial_fallback`` in metrics.
* **timeouts** -- a stage that overruns its ``timeout`` has its whole
  pool *recycled*: the runaway worker is actually killed (no orphan
  burning CPU), innocent in-flight stages are re-dispatched free of
  charge, and the overdue stage retries or degrades.  Serial mode
  cannot pre-empt and records overruns in metrics only.

Chaos hooks: :func:`_execute` passes through
:func:`repro.flow.chaos.checkpoint` (site ``stage:<name>``) so the
fault-injection suite can attack stages in either execution mode at
zero cost to production runs.
"""

from __future__ import annotations

import concurrent.futures
import copy
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.flow.cache import (
    FlowCache,
    artifact_digest,
    stage_key,
    value_digest,
)
from repro.flow.graph import Flow
from repro.flow.metrics import FlowMetrics, StageMetric, collect
from repro.flow.resilience import (
    BACKOFF_BASE,
    BACKOFF_CAP,
    POOL_FAILURE_LIMIT,
    PoolProvider,
    backoff_seconds,
    is_pool_failure,
)
from repro.flow.stage import Stage


class FlowError(RuntimeError):
    """A required stage failed (or a needed artifact is unavailable)."""


@dataclass(frozen=True)
class Unavailable:
    """Placeholder published for the outputs of a degraded stage."""

    stage: str
    reason: str

    def __bool__(self) -> bool:
        return False


def is_unavailable(value: Any) -> bool:
    return isinstance(value, Unavailable)


@dataclass
class FlowResult:
    flow: str
    artifacts: dict[str, Any]
    metrics: FlowMetrics
    keys: dict[str, str] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Any:
        try:
            value = self.artifacts[name]
        except KeyError:
            raise KeyError(
                f"flow {self.flow!r} produced no artifact {name!r}"
            ) from None
        if is_unavailable(value):
            raise FlowError(
                f"artifact {name!r} unavailable "
                f"(stage {value.stage!r}: {value.reason})"
            )
        return value

    def get(self, name: str, default: Any = None) -> Any:
        value = self.artifacts.get(name, default)
        return default if is_unavailable(value) else value

    @property
    def ok(self) -> bool:
        return not any(is_unavailable(v) for v in self.artifacts.values())


def _execute(stage: Stage, inputs: dict[str, Any]):
    """Run one stage; also the picklable worker-process entry point."""
    from repro.flow import chaos

    chaos.checkpoint(f"stage:{stage.name}")
    with collect() as custom:
        t0 = time.perf_counter()
        artifacts = stage.call(inputs)
        seconds = time.perf_counter() - t0
    return artifacts, dict(custom), seconds


_POLL_SECONDS = 0.05


class Runner:
    """Executes flows with caching, retries, recovery, and fan-out."""

    def __init__(
        self,
        cache: FlowCache | None = None,
        retry_base: float = BACKOFF_BASE,
        retry_cap: float = BACKOFF_CAP,
        pool_failure_limit: int = POOL_FAILURE_LIMIT,
        pools: PoolProvider | None = None,
    ) -> None:
        self.cache = cache
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.pool_failure_limit = max(1, pool_failure_limit)
        # Pool lifecycle is delegated so a long-running service can
        # hand every Runner the same warm pool (see PoolProvider).
        self.pools = pools if pools is not None else PoolProvider()

    # -- keying ------------------------------------------------------

    def _stage_keys(
        self, flow: Flow, inputs: Mapping[str, Any]
    ) -> dict[str, str]:
        digests = {name: value_digest(v) for name, v in inputs.items()}
        keys: dict[str, str] = {}
        for stage in flow.topo_order():
            key = stage_key(
                stage.name,
                stage.fingerprint(),
                stage.params,
                {a: digests[a] for a in stage.inputs},
            )
            keys[stage.name] = key
            for a in stage.outputs:
                digests[a] = artifact_digest(key, a)
        return keys

    def stage_keys(
        self, flow: Flow, inputs: Mapping[str, Any] | None = None
    ) -> dict[str, str]:
        """Public recipe keys for ``flow`` without running anything.

        The service layer keys in-flight deduplication on these: two
        submissions whose flows produce identical stage keys are the
        same recipe by construction (same code fingerprints, params,
        and wiring), so one execution serves both.
        """
        inputs = dict(inputs or {})
        flow.validate(inputs)
        return self._stage_keys(flow, inputs)

    # -- running -----------------------------------------------------

    def run(
        self,
        flow: Flow,
        inputs: Mapping[str, Any] | None = None,
        jobs: int = 1,
        metrics_path: str | None = None,
        metrics: FlowMetrics | None = None,
    ) -> FlowResult:
        inputs = dict(inputs or {})
        flow.validate(inputs)
        keys = self._stage_keys(flow, inputs)
        if metrics is None:
            metrics = FlowMetrics(flow=flow.name, jobs=max(1, jobs))
        artifacts: dict[str, Any] = dict(inputs)
        try:
            if jobs > 1 and len(flow) > 1:
                self._run_parallel(flow, artifacts, keys, metrics, jobs)
            else:
                self._run_serial(flow, artifacts, keys, metrics)
        finally:
            metrics.finished = time.time()
            if metrics_path:
                metrics.dump(metrics_path)
        return FlowResult(flow.name, artifacts, metrics, keys)

    # Shared bookkeeping ------------------------------------------------

    def _try_cache(self, stage: Stage, key: str, metric: StageMetric,
                   metrics: FlowMetrics) -> dict[str, Any] | None:
        if self.cache is None or not stage.cacheable:
            return None
        t0 = time.perf_counter()
        before = getattr(self.cache, "corrupt_quarantined", 0)
        got = self.cache.get(key)
        metrics.cache_corrupt += (
            getattr(self.cache, "corrupt_quarantined", 0) - before
        )
        if got is None or set(got) != set(stage.outputs):
            return None
        metric.status = "hit"
        metric.cached = True
        metric.artifact_bytes = self.cache.size(key)
        metric.seconds = time.perf_counter() - t0
        return got

    def _store(self, stage: Stage, key: str, outs: dict[str, Any],
               metric: StageMetric) -> None:
        if self.cache is not None and stage.cacheable:
            size = self.cache.put(key, stage.name, outs)
            if size >= 0:
                metric.cached = True
                metric.artifact_bytes = size
                return
        # Uncached stages still report their artifact size (the cache
        # entry's pickled size is exactly what this measures when the
        # stage is cacheable, so the metric means one thing everywhere).
        try:
            import pickle

            metric.artifact_bytes = len(
                pickle.dumps(outs, protocol=pickle.HIGHEST_PROTOCOL)
            )
        except Exception:
            pass  # unpicklable artifacts stay at 0

    def _degrade(self, stage: Stage, reason: str,
                 artifacts: dict[str, Any], metric: StageMetric,
                 status: str = "failed") -> None:
        metric.status = status
        metric.error = reason
        if status == "failed" and not stage.optional:
            raise FlowError(f"stage {stage.name!r} failed: {reason}")
        for a in stage.outputs:
            artifacts[a] = Unavailable(stage.name, reason)

    def _blocked_reason(self, stage: Stage,
                        artifacts: Mapping[str, Any]) -> str | None:
        for a in stage.inputs:
            v = artifacts.get(a)
            if is_unavailable(v):
                return f"input {a!r} unavailable ({v.reason})"
        return None

    # Serial ------------------------------------------------------------

    def _run_serial(self, flow: Flow, artifacts: dict[str, Any],
                    keys: dict[str, str], metrics: FlowMetrics,
                    stages: list[Stage] | None = None) -> None:
        """Run ``stages`` (default: the whole flow) in topological order.

        Also the fallback executor the parallel path hands the
        *remaining* stages to once it has given up on process pools.
        """
        for stage in (flow.topo_order() if stages is None else stages):
            metric = metrics.metric(stage.name)
            metric.key = keys[stage.name]
            blocked = self._blocked_reason(stage, artifacts)
            if blocked is not None:
                self._degrade(stage, blocked, artifacts, metric,
                              status="skipped")
                continue
            cached = self._try_cache(stage, metric.key, metric, metrics)
            if cached is not None:
                artifacts.update(cached)
                continue
            ins = {a: copy.deepcopy(artifacts[a]) for a in stage.inputs}
            last_err = ""
            for attempt in range(stage.retries + 1):
                if attempt:
                    time.sleep(backoff_seconds(
                        keys[stage.name], metric.attempts,
                        self.retry_base, self.retry_cap,
                    ))
                metric.attempts += 1
                try:
                    outs, custom, seconds = _execute(stage, ins)
                except Exception as exc:
                    last_err = f"{type(exc).__name__}: {exc}"
                    metric.error = last_err
                    continue
                metric.status = "ran"
                metric.seconds += seconds
                metric.custom.update(custom)
                if stage.timeout and seconds > stage.timeout:
                    metric.custom["timeout_overrun_s"] = round(
                        seconds - stage.timeout, 3
                    )
                artifacts.update(outs)
                self._store(stage, metric.key, outs, metric)
                break
            else:
                self._degrade(stage, last_err, artifacts, metric)

    # Parallel ----------------------------------------------------------

    def _run_parallel(self, flow: Flow, artifacts: dict[str, Any],
                      keys: dict[str, str], metrics: FlowMetrics,
                      jobs: int) -> None:
        order = flow.topo_order()
        pending: dict[str, Stage] = {s.name: s for s in order}
        running: dict[concurrent.futures.Future, Stage] = {}
        deadlines: dict[concurrent.futures.Future, float] = {}
        delayed: list[tuple[float, Stage]] = []  # backoff retry queue
        pool: concurrent.futures.ProcessPoolExecutor | None = None
        pool_failures = 0  # consecutive worker-death rebuilds

        def new_pool() -> concurrent.futures.ProcessPoolExecutor:
            return self.pools.acquire(jobs)

        def submit(stage: Stage, count_attempt: bool = True) -> bool:
            """Dispatch one stage; False when the pool is broken."""
            metric = metrics.metric(stage.name)
            if count_attempt:
                metric.attempts += 1
            ins = {a: artifacts[a] for a in stage.inputs}
            try:
                fut = pool.submit(_execute, stage, ins)
            except (concurrent.futures.BrokenExecutor, RuntimeError):
                if count_attempt:
                    metric.attempts -= 1  # never actually ran
                return False
            running[fut] = stage
            if stage.timeout:
                deadlines[fut] = time.monotonic() + stage.timeout
            return True

        def retry_or_degrade(stage: Stage, err: str,
                             metric: StageMetric) -> None:
            metric.error = err
            if metric.attempts <= stage.retries:
                delay = backoff_seconds(
                    keys[stage.name], metric.attempts,
                    self.retry_base, self.retry_cap,
                )
                delayed.append((time.monotonic() + delay, stage))
            else:
                self._degrade(stage, err, artifacts, metric)

        def remaining_stages() -> list[Stage]:
            """Every stage not yet settled, in topological order."""
            done = {
                m.stage for m in metrics.stages
                if m.status in ("hit", "ran", "failed", "skipped")
            }
            return [s for s in order if s.name not in done]

        try:
            pool = new_pool()
        except (OSError, PermissionError):
            # Environments that forbid fork/spawn get a serial run.
            metrics.serial_fallback = True
            self._run_serial(flow, artifacts, keys, metrics)
            return
        try:
            while pending or running or delayed:
                now = time.monotonic()
                pool_broken = False

                # Re-launch delayed retries that are due.
                due = [s for t, s in delayed if t <= now]
                delayed = [(t, s) for t, s in delayed if t > now]
                for stage in due:
                    if not submit(stage):
                        pool_broken = True
                        delayed.append((now, stage))

                # Launch every pending stage whose inputs are settled.
                for name in sorted(pending):
                    stage = pending[name]
                    if any(a not in artifacts for a in stage.inputs):
                        continue
                    del pending[name]
                    metric = metrics.metric(stage.name)
                    metric.key = keys[stage.name]
                    blocked = self._blocked_reason(stage, artifacts)
                    if blocked is not None:
                        self._degrade(stage, blocked, artifacts,
                                      metric, status="skipped")
                        continue
                    cached = self._try_cache(stage, metric.key, metric,
                                             metrics)
                    if cached is not None:
                        artifacts.update(cached)
                        continue
                    if not submit(stage):
                        pool_broken = True
                        pending[name] = stage

                if not running and not pool_broken:
                    if delayed:
                        soonest = min(t for t, _ in delayed)
                        time.sleep(max(0.0, min(
                            soonest - time.monotonic(), _POLL_SECONDS
                        )))
                        continue
                    if pending:  # every remaining stage is blocked
                        continue
                    break

                finished: set[concurrent.futures.Future] = set()
                if running and not pool_broken:
                    finished, _ = concurrent.futures.wait(
                        running,
                        timeout=_POLL_SECONDS,
                        return_when=concurrent.futures.FIRST_COMPLETED,
                    )
                now = time.monotonic()

                redispatch: list[Stage] = []
                for fut in finished:
                    stage = running.pop(fut)
                    deadlines.pop(fut, None)
                    metric = metrics.metric(stage.name)
                    try:
                        outs, custom, seconds = fut.result()
                    except Exception as exc:
                        if is_pool_failure(exc):
                            # The worker died; culprit and victims are
                            # indistinguishable -- re-dispatch all, free.
                            pool_broken = True
                            redispatch.append(stage)
                            continue
                        retry_or_degrade(
                            stage, f"{type(exc).__name__}: {exc}", metric
                        )
                        continue
                    pool_failures = 0
                    metric.status = "ran"
                    metric.seconds += seconds
                    metric.custom.update(custom)
                    artifacts.update(outs)
                    self._store(stage, metric.key, outs, metric)

                overdue = {
                    fut for fut, dl in deadlines.items()
                    if fut in running and now > dl
                }
                if pool_broken or overdue:
                    # Tear the pool down for real: a broken pool is
                    # useless, and a timed-out worker can only be
                    # stopped by killing it.  In-flight innocents are
                    # re-dispatched without spending their retries.
                    for fut, stage in list(running.items()):
                        if fut in overdue:
                            metric = metrics.metric(stage.name)
                            retry_or_degrade(
                                stage,
                                f"timeout after {stage.timeout:.1f}s "
                                f"(worker killed)",
                                metric,
                            )
                        else:
                            redispatch.append(stage)
                    running.clear()
                    deadlines.clear()
                    self.pools.discard(pool)
                    pool = None
                    if pool_broken:
                        metrics.pool_rebuilds += 1
                        pool_failures += 1
                    else:
                        metrics.pool_recycles += 1
                    if pool_failures >= self.pool_failure_limit:
                        # Pools keep dying under us; finish the flow
                        # in-process.  Results are bit-identical, only
                        # the parallelism is lost.
                        metrics.serial_fallback = True
                        delayed.clear()
                        self._run_serial(flow, artifacts, keys, metrics,
                                         stages=remaining_stages())
                        return
                    try:
                        pool = new_pool()
                    except (OSError, PermissionError):
                        metrics.serial_fallback = True
                        delayed.clear()
                        self._run_serial(flow, artifacts, keys, metrics,
                                         stages=remaining_stages())
                        return
                    for stage in redispatch:
                        submit(stage, count_attempt=False)
        except BaseException:
            # In-flight futures may reference a failed flow; the pool
            # cannot be trusted to drain them, so it is discarded (a
            # warm provider rebuilds lazily on the next acquire).
            if pool is not None:
                self.pools.discard(pool)
            raise
        else:
            if pool is not None:
                self.pools.release(pool)


def format_failure(exc: BaseException) -> str:
    """One-line summary plus the deepest frame, for CLI error output."""
    tb = traceback.extract_tb(exc.__traceback__)
    where = f" [{tb[-1].filename}:{tb[-1].lineno}]" if tb else ""
    return f"{type(exc).__name__}: {exc}{where}"
