"""Flow execution: serial or process-pool parallel, cached, observable.

The runner walks a :class:`~repro.flow.graph.Flow` in dependency order.
Every stage key is computed *before* anything runs (keys depend only on
code fingerprints, params, and upstream keys -- never on artifact
bytes), so cache lookups are pure dictionary probes and a warm rerun
touches no domain code at all.

Execution modes:

``jobs <= 1``
    in-process, stages in deterministic topological order.  Inputs are
    deep-copied before each stage call so an impure stage cannot leak
    mutations into sibling stages -- the same isolation pickling gives
    worker processes, keeping serial and parallel runs bit-identical.
``jobs > 1``
    a ``ProcessPoolExecutor`` runs every ready stage concurrently;
    results merge deterministically because artifacts are keyed by
    name and each has exactly one producer.

Failure policy per stage: up to ``retries`` re-runs; a stage that still
fails either aborts the flow (:class:`FlowError`) or -- when marked
``optional`` -- publishes :class:`Unavailable` markers for its outputs,
and every stage downstream of an unavailable artifact is skipped rather
than run on garbage.  Timeouts are enforced in parallel mode (the
waiter abandons the future and treats the attempt as failed); serial
mode cannot pre-empt and records overruns in metrics only.
"""

from __future__ import annotations

import concurrent.futures
import copy
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.flow.cache import (
    FlowCache,
    artifact_digest,
    stage_key,
    value_digest,
)
from repro.flow.graph import Flow
from repro.flow.metrics import FlowMetrics, StageMetric, collect
from repro.flow.stage import Stage


class FlowError(RuntimeError):
    """A required stage failed (or a needed artifact is unavailable)."""


@dataclass(frozen=True)
class Unavailable:
    """Placeholder published for the outputs of a degraded stage."""

    stage: str
    reason: str

    def __bool__(self) -> bool:
        return False


def is_unavailable(value: Any) -> bool:
    return isinstance(value, Unavailable)


@dataclass
class FlowResult:
    flow: str
    artifacts: dict[str, Any]
    metrics: FlowMetrics
    keys: dict[str, str] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Any:
        try:
            value = self.artifacts[name]
        except KeyError:
            raise KeyError(
                f"flow {self.flow!r} produced no artifact {name!r}"
            ) from None
        if is_unavailable(value):
            raise FlowError(
                f"artifact {name!r} unavailable "
                f"(stage {value.stage!r}: {value.reason})"
            )
        return value

    def get(self, name: str, default: Any = None) -> Any:
        value = self.artifacts.get(name, default)
        return default if is_unavailable(value) else value

    @property
    def ok(self) -> bool:
        return not any(is_unavailable(v) for v in self.artifacts.values())


def _execute(stage: Stage, inputs: dict[str, Any]):
    """Run one stage; also the picklable worker-process entry point."""
    with collect() as custom:
        t0 = time.perf_counter()
        artifacts = stage.call(inputs)
        seconds = time.perf_counter() - t0
    return artifacts, dict(custom), seconds


_POLL_SECONDS = 0.05


class Runner:
    """Executes flows with caching, retries, and fan-out."""

    def __init__(self, cache: FlowCache | None = None) -> None:
        self.cache = cache

    # -- keying ------------------------------------------------------

    def _stage_keys(
        self, flow: Flow, inputs: Mapping[str, Any]
    ) -> dict[str, str]:
        digests = {name: value_digest(v) for name, v in inputs.items()}
        keys: dict[str, str] = {}
        for stage in flow.topo_order():
            key = stage_key(
                stage.name,
                stage.fingerprint(),
                stage.params,
                {a: digests[a] for a in stage.inputs},
            )
            keys[stage.name] = key
            for a in stage.outputs:
                digests[a] = artifact_digest(key, a)
        return keys

    # -- running -----------------------------------------------------

    def run(
        self,
        flow: Flow,
        inputs: Mapping[str, Any] | None = None,
        jobs: int = 1,
        metrics_path: str | None = None,
        metrics: FlowMetrics | None = None,
    ) -> FlowResult:
        inputs = dict(inputs or {})
        flow.validate(inputs)
        keys = self._stage_keys(flow, inputs)
        if metrics is None:
            metrics = FlowMetrics(flow=flow.name, jobs=max(1, jobs))
        artifacts: dict[str, Any] = dict(inputs)
        try:
            if jobs > 1 and len(flow) > 1:
                self._run_parallel(flow, artifacts, keys, metrics, jobs)
            else:
                self._run_serial(flow, artifacts, keys, metrics)
        finally:
            metrics.finished = time.time()
            if metrics_path:
                metrics.dump(metrics_path)
        return FlowResult(flow.name, artifacts, metrics, keys)

    # Shared bookkeeping ------------------------------------------------

    def _try_cache(self, stage: Stage, key: str,
                   metric: StageMetric) -> dict[str, Any] | None:
        if self.cache is None or not stage.cacheable:
            return None
        t0 = time.perf_counter()
        got = self.cache.get(key)
        if got is None or set(got) != set(stage.outputs):
            return None
        metric.status = "hit"
        metric.cached = True
        metric.artifact_bytes = self.cache.size(key)
        metric.seconds = time.perf_counter() - t0
        return got

    def _store(self, stage: Stage, key: str, outs: dict[str, Any],
               metric: StageMetric) -> None:
        if self.cache is not None and stage.cacheable:
            size = self.cache.put(key, stage.name, outs)
            if size >= 0:
                metric.cached = True
                metric.artifact_bytes = size

    def _degrade(self, stage: Stage, reason: str,
                 artifacts: dict[str, Any], metric: StageMetric,
                 status: str = "failed") -> None:
        metric.status = status
        metric.error = reason
        if status == "failed" and not stage.optional:
            raise FlowError(f"stage {stage.name!r} failed: {reason}")
        for a in stage.outputs:
            artifacts[a] = Unavailable(stage.name, reason)

    def _blocked_reason(self, stage: Stage,
                        artifacts: Mapping[str, Any]) -> str | None:
        for a in stage.inputs:
            v = artifacts.get(a)
            if is_unavailable(v):
                return f"input {a!r} unavailable ({v.reason})"
        return None

    # Serial ------------------------------------------------------------

    def _run_serial(self, flow: Flow, artifacts: dict[str, Any],
                    keys: dict[str, str], metrics: FlowMetrics) -> None:
        for stage in flow.topo_order():
            metric = metrics.metric(stage.name)
            metric.key = keys[stage.name]
            blocked = self._blocked_reason(stage, artifacts)
            if blocked is not None:
                self._degrade(stage, blocked, artifacts, metric,
                              status="skipped")
                continue
            cached = self._try_cache(stage, metric.key, metric)
            if cached is not None:
                artifacts.update(cached)
                continue
            ins = {a: copy.deepcopy(artifacts[a]) for a in stage.inputs}
            last_err = ""
            for attempt in range(stage.retries + 1):
                metric.attempts += 1
                try:
                    outs, custom, seconds = _execute(stage, ins)
                except Exception as exc:
                    last_err = f"{type(exc).__name__}: {exc}"
                    metric.error = last_err
                    continue
                metric.status = "ran"
                metric.seconds += seconds
                metric.custom.update(custom)
                if stage.timeout and seconds > stage.timeout:
                    metric.custom["timeout_overrun_s"] = round(
                        seconds - stage.timeout, 3
                    )
                artifacts.update(outs)
                self._store(stage, metric.key, outs, metric)
                break
            else:
                self._degrade(stage, last_err, artifacts, metric)

    # Parallel ----------------------------------------------------------

    def _run_parallel(self, flow: Flow, artifacts: dict[str, Any],
                      keys: dict[str, str], metrics: FlowMetrics,
                      jobs: int) -> None:
        order = flow.topo_order()
        pending: dict[str, Stage] = {s.name: s for s in order}
        running: dict[concurrent.futures.Future, Stage] = {}
        deadlines: dict[concurrent.futures.Future, float] = {}
        abandoned: set[concurrent.futures.Future] = set()

        def submit(pool, stage: Stage) -> None:
            metric = metrics.metric(stage.name)
            metric.attempts += 1
            ins = {a: artifacts[a] for a in stage.inputs}
            fut = pool.submit(_execute, stage, ins)
            running[fut] = stage
            if stage.timeout:
                deadlines[fut] = time.monotonic() + stage.timeout

        pool = concurrent.futures.ProcessPoolExecutor(max_workers=jobs)
        try:
            while pending or running:
                # Launch every stage whose inputs are settled.
                for name in sorted(pending):
                    stage = pending[name]
                    if any(a not in artifacts for a in stage.inputs):
                        continue
                    del pending[name]
                    metric = metrics.metric(stage.name)
                    metric.key = keys[stage.name]
                    blocked = self._blocked_reason(stage, artifacts)
                    if blocked is not None:
                        self._degrade(stage, blocked, artifacts,
                                      metric, status="skipped")
                        continue
                    cached = self._try_cache(stage, metric.key, metric)
                    if cached is not None:
                        artifacts.update(cached)
                        continue
                    submit(pool, stage)
                if not running:
                    if pending:  # every remaining stage is blocked
                        continue
                    break
                finished, _ = concurrent.futures.wait(
                    running,
                    timeout=_POLL_SECONDS,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                now = time.monotonic()
                for fut in list(running):
                    stage = running[fut]
                    metric = metrics.metric(stage.name)
                    if fut in finished:
                        del running[fut]
                        deadlines.pop(fut, None)
                        try:
                            outs, custom, seconds = fut.result()
                        except Exception as exc:
                            err = f"{type(exc).__name__}: {exc}"
                            metric.error = err
                            if metric.attempts <= stage.retries:
                                submit(pool, stage)
                            else:
                                self._degrade(stage, err, artifacts,
                                              metric)
                            continue
                        metric.status = "ran"
                        metric.seconds += seconds
                        metric.custom.update(custom)
                        artifacts.update(outs)
                        self._store(stage, metric.key, outs, metric)
                    elif (fut in deadlines
                            and now > deadlines[fut]
                            and fut not in abandoned):
                        # Can't kill a busy worker; stop waiting on it.
                        abandoned.add(fut)
                        del running[fut]
                        del deadlines[fut]
                        fut.cancel()
                        err = (f"timeout after "
                               f"{stage.timeout:.1f}s")
                        metric.error = err
                        if metric.attempts <= stage.retries:
                            submit(pool, stage)
                        else:
                            self._degrade(stage, err, artifacts,
                                          metric)
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            # Abandoned (timed-out) workers can't be killed; don't block
            # on them -- they are joined at interpreter exit instead.
            pool.shutdown(wait=not abandoned, cancel_futures=True)


def format_failure(exc: BaseException) -> str:
    """One-line summary plus the deepest frame, for CLI error output."""
    tb = traceback.extract_tb(exc.__traceback__)
    where = f" [{tb[-1].filename}:{tb[-1].lineno}]" if tb else ""
    return f"{type(exc).__name__}: {exc}{where}"
