"""Canonical flow definitions for the library's synthesis→test pipelines.

Each builder returns a :class:`~repro.flow.graph.Flow` whose merge
stage produces a ``table`` artifact: a plain table *spec* dict
(``experiment/title/header/rows/notes/extra``) that the benchmark
harness turns into a ``benchmarks.common.Table`` and the CLI renders
directly.  Keeping specs as plain data means they cache, pickle, and
JSON-serialise without the engine knowing anything about benches.

Stage functions here are module-level and pure so they can run in
worker processes and participate in content-addressed caching; each
declares the ``repro`` packages it computes with as ``code_deps``, so
touching one module invalidates exactly the stages (and downstream
stages) that depend on it.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Sequence

from repro.flow.graph import Flow
from repro.flow.metrics import record_metric
from repro.flow.stage import Stage


def table_spec(
    experiment: str,
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    notes: Iterable[str] = (),
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    return {
        "experiment": experiment,
        "title": title,
        "header": list(header),
        "rows": [tuple(r) for r in rows],
        "notes": list(notes),
        "extra": dict(extra or {}),
    }


def conventional_datapath(cdfg, slack: float = 1.5,
                          register_style: str = "left_edge"):
    """The testability-blind baseline synthesis (same as the benches)."""
    from repro import hls
    from repro.cdfg.analysis import critical_path_length

    latency = max(
        critical_path_length(cdfg),
        int(slack * critical_path_length(cdfg)),
    )
    alloc = hls.allocate_for_latency(cdfg, latency)
    sched = hls.list_schedule(cdfg, alloc)
    fub = hls.bind_functional_units(cdfg, sched, alloc)
    if register_style == "left_edge":
        regs = hls.assign_registers_left_edge(cdfg, sched)
    else:
        regs = hls.assign_registers_coloring(cdfg, sched)
    dp = hls.build_datapath(cdfg, sched, fub, regs)
    return dp, sched, fub, alloc, latency


# ---------------------------------------------------------------------------
# full-scan (E-4.1b)
# ---------------------------------------------------------------------------

FULLSCAN_CASES = [("figure1", 3, 400), ("tseng", 3, 3000), ("fir8", 2, 400)]


def synth_suite_design(design: str, width: int, slack: float):
    from repro.cdfg import suite

    cdfg = suite.standard_suite(width=width)[design]
    dp, *_ = conventional_datapath(cdfg, slack=slack)
    return dp


def fullscan_row(dp, design: str, backtracks: int, max_faults: int,
                 backend: str | None = None,
                 atpg_backend: str | None = None,
                 predrop: int | None = None,
                 shards: int | None = None):
    from repro.rtl import fullscan_report

    t0 = time.perf_counter()
    rep = fullscan_report(dp, backtrack_limit=backtracks,
                          max_faults=max_faults, backend=backend,
                          atpg_backend=atpg_backend, predrop=predrop,
                          shards=shards)
    elapsed = time.perf_counter() - t0
    if elapsed > 0:
        record_metric("faults_per_s", round(rep.total_faults / elapsed, 1))
    return (design, rep.total_faults, rep.detected, rep.untestable,
            rep.aborted, f"{rep.coverage:.3f}",
            f"{rep.test_efficiency:.3f}")


def fullscan_table(notes: Sequence[str] = (), **rows):
    ordered = [rows[k] for k in sorted(rows, key=lambda k: int(k[4:]))]
    return table_spec(
        "E-4.1b",
        "[8] full-scan test efficiency after restructuring",
        ["design", "faults", "detected", "untestable", "aborted",
         "coverage", "efficiency"],
        ordered,
        notes or [
            "claim shape: 100% test efficiency (no aborts) on every "
            "full-scan design; coverage ~100%"
        ],
    )


def fullscan_flow(cases: Sequence[tuple[str, int, int]] | None = None,
                  slack: float = 1.5, max_faults: int = 300,
                  backend: str | None = None,
                  atpg_backend: str | None = None,
                  predrop: int | None = None,
                  shards: int | None = None) -> Flow:
    """Full-scan test efficiency after restructuring (E-4.1b)."""
    cases = list(cases if cases is not None else FULLSCAN_CASES)
    f = Flow("fullscan")
    for i, (design, width, backtracks) in enumerate(cases):
        f.stage(
            f"synth:{design}", synth_suite_design,
            outputs=(f"dp_{design}",),
            params={"design": design, "width": width, "slack": slack},
            code_deps=("repro.cdfg", "repro.hls"),
        )
        f.stage(
            f"fullscan:{design}", fullscan_row,
            inputs={"dp": f"dp_{design}"},
            outputs=(f"row_{i}",),
            params={"design": design, "backtracks": backtracks,
                    "max_faults": max_faults, "backend": backend,
                    "atpg_backend": atpg_backend, "predrop": predrop,
                    "shards": shards},
            code_deps=("repro.rtl", "repro.gatelevel"),
        )
    f.stage(
        "table", fullscan_table,
        inputs=tuple(f"row_{i}" for i in range(len(cases))),
        outputs=("table",),
    )
    return f


# ---------------------------------------------------------------------------
# partial-scan selection (E-3.3.1)
# ---------------------------------------------------------------------------

PARTIAL_SCAN_NAMES = ["diffeq_loop", "iir2", "iir3", "ewf", "ar4", "ar6"]


def _boundary_flow(cdfg, latency):
    from repro import hls
    from repro.scan import select_boundary_variables
    from repro.scan.report import minimize_scan_registers
    from repro.scan.scan_select import assign_registers_with_plan
    from repro.scan.simultaneous import ensure_loop_free

    alloc = hls.allocate_for_latency(cdfg, latency)
    sched = hls.list_schedule(cdfg, alloc)
    plan = select_boundary_variables(cdfg, sched)
    ra = assign_registers_with_plan(cdfg, sched, plan)
    fub = hls.bind_functional_units(cdfg, sched, alloc)
    dp = hls.build_datapath(cdfg, sched, fub, ra)
    dp.mark_scan(*sorted({
        dp.register_of_variable(v).name for v in plan.variables
    }))
    ensure_loop_free(dp)
    minimize_scan_registers(dp)
    return dp


def partial_scan_row(design: str, slack: float):
    from repro import hls
    from repro.cdfg import suite
    from repro.cdfg.analysis import critical_path_length
    from repro.scan import gate_level_partial_scan, loop_aware_synthesis
    from repro.sgraph import build_sgraph, is_loop_free, sgraph_without_scan

    cdfg = suite.standard_suite()[design]
    latency = int(slack * critical_path_length(cdfg))
    dp_gate, *_ = conventional_datapath(cdfg, slack=slack)
    rep = gate_level_partial_scan(dp_gate)
    dp_b = _boundary_flow(cdfg, latency)
    alloc = hls.allocate_for_latency(cdfg, latency)
    dp_a, _plan = loop_aware_synthesis(cdfg, alloc, num_steps=latency)
    scan_bits = lambda dp: sum(r.width for r in dp.scan_registers())
    loop_free = all(
        is_loop_free(sgraph_without_scan(build_sgraph(d)))
        for d in (dp_gate, dp_b, dp_a)
    )
    return (design, rep.scan_bits, scan_bits(dp_b), scan_bits(dp_a),
            loop_free)


def partial_scan_table(**rows):
    ordered = [rows[k] for k in sorted(rows, key=lambda k: int(k[4:]))]
    totals = [0, 0, 0]
    for row in ordered:
        totals = [a + b for a, b in zip(totals, row[1:4])]
    ordered.append(("TOTAL", *totals, ""))
    return table_spec(
        "E-3.3.1",
        "scan cost: gate-level MFVS vs [24] boundary vs [33] loop-aware",
        ["design", "gate bits", "[24] bits", "[33] bits", "all loop-free"],
        ordered,
        ["claim shape: [33] <= [24] <= gate-level on totals; every flow "
         "loop-free (self-loops tolerated)"],
        extra={"totals": totals},
    )


def partial_scan_flow(names: Sequence[str] | None = None,
                      slack: float = 1.5) -> Flow:
    """Partial-scan cost: gate-level MFVS vs boundary vs loop-aware
    (E-3.3.1)."""
    names = list(names if names is not None else PARTIAL_SCAN_NAMES)
    f = Flow("partial_scan")
    for i, design in enumerate(names):
        f.stage(
            f"scan:{design}", partial_scan_row,
            outputs=(f"row_{i}",),
            params={"design": design, "slack": slack},
            code_deps=("repro.cdfg", "repro.hls", "repro.scan",
                       "repro.sgraph"),
        )
    f.stage(
        "table", partial_scan_table,
        inputs=tuple(f"row_{i}" for i in range(len(names))),
        outputs=("table",),
    )
    return f


# ---------------------------------------------------------------------------
# BIST sessions (E-5.2)
# ---------------------------------------------------------------------------

BIST_SESSION_NAMES = ["diffeq", "iir2", "iir3", "ewf", "ar4", "fir8"]


def bist_session_row(design: str, slack: float):
    from repro import hls
    from repro.bist import (
        assign_test_roles,
        schedule_sessions,
        sharing_register_assignment,
    )
    from repro.bist.sessions import (
        path_based_sessions,
        session_aware_assignment,
    )
    from repro.cdfg import suite
    from repro.cdfg.analysis import critical_path_length

    cdfg = suite.standard_suite()[design]
    latency = int(slack * critical_path_length(cdfg))
    alloc = hls.allocate_for_latency(cdfg, latency)
    sched = hls.list_schedule(cdfg, alloc)
    fub = hls.bind_functional_units(cdfg, sched, alloc)
    shared = hls.build_datapath(
        cdfg, sched, fub, sharing_register_assignment(cdfg, sched, fub)
    )
    aware = hls.build_datapath(
        cdfg, sched, fub, session_aware_assignment(cdfg, sched, fub)
    )
    _cfg, envs = assign_test_roles(shared)
    return (design, len(schedule_sessions(envs)),
            len(path_based_sessions(aware)),
            len(shared.registers), len(aware.registers))


def bist_session_table(**rows):
    ordered = [rows[k] for k in sorted(rows, key=lambda k: int(k[4:]))]
    return table_spec(
        "E-5.2",
        "[20] test concurrency: per-module sessions vs path-based",
        ["design", "sessions per-module", "sessions path [20]",
         "regs shared", "regs concurrency"],
        ordered,
        ["claim shape: path-based testing reaches one session on every "
         "data path; per-module sharing needs several; concurrency may "
         "cost extra registers (the survey's noted trade-off)"],
    )


def bist_sessions_flow(names: Sequence[str] | None = None,
                       slack: float = 1.6) -> Flow:
    """BIST test concurrency: per-module vs path-based sessions (E-5.2)."""
    names = list(names if names is not None else BIST_SESSION_NAMES)
    f = Flow("bist_sessions")
    for i, design in enumerate(names):
        f.stage(
            f"bist:{design}", bist_session_row,
            outputs=(f"row_{i}",),
            params={"design": design, "slack": slack},
            code_deps=("repro.cdfg", "repro.hls", "repro.bist"),
        )
    f.stage(
        "table", bist_session_table,
        inputs=tuple(f"row_{i}" for i in range(len(names))),
        outputs=("table",),
    )
    return f


# ---------------------------------------------------------------------------
# in-situ BIST signature coverage (E-5.5)
# ---------------------------------------------------------------------------

INSITU_BIST_NAMES = ["iir2", "ar4"]
INSITU_BIST_WIDTH = 4
INSITU_BIST_FAULTS = 90


def insitu_bist_row(design: str, slack: float, width: int,
                    n_faults: int, backend: str | None = None,
                    shards: int | None = None):
    from repro.bist import assign_test_roles, schedule_sessions
    from repro.cdfg import suite
    from repro.gatelevel.bist_session import (
        bist_fault_coverage,
        build_bist_hardware,
    )
    from repro.gatelevel.faults import all_faults
    from repro.gatelevel.genscale import sample_faults

    cdfg = suite.standard_suite(width=width)[design]
    dp, *_ = conventional_datapath(cdfg, slack=slack)
    _cfg, envs = assign_test_roles(dp)
    hw = build_bist_hardware(dp, envs)
    sessions = schedule_sessions(list(envs))
    unit_faults = [
        f for f in all_faults(hw.netlist)
        if f.net.startswith(("fa_", "pp_"))
    ][:n_faults]
    kw = dict(backend=backend, shards=shards)
    t0 = time.perf_counter()
    cov16 = bist_fault_coverage(
        hw, sessions=sessions, cycles=16, faults=unit_faults, **kw
    )
    cov64 = bist_fault_coverage(
        hw, sessions=sessions, cycles=64, faults=unit_faults, **kw
    )
    # Seeded sample of the whole-machine universe: the old ``[:n_faults]``
    # prefix only ever saw the first nets in declaration order, biasing
    # the all-in-one/scheduled comparison toward one corner of the
    # datapath.
    sample = sample_faults(hw.netlist, n_faults, seed=5)
    one = bist_fault_coverage(
        hw, sessions=[[u.name for u in dp.units]],
        cycles=48, faults=sample, **kw
    )
    multi = bist_fault_coverage(
        hw, sessions=sessions, cycles=48, faults=sample, **kw
    )
    elapsed = time.perf_counter() - t0
    if elapsed > 0:
        # four coverage runs over ~n_faults faults each
        record_metric("faults_per_s",
                      round((2 * len(unit_faults) + 2 * len(sample))
                            / elapsed, 1))
    return (design, len(sessions), f"{cov16:.3f}", f"{cov64:.3f}",
            f"{one:.3f}", f"{multi:.3f}")


def insitu_bist_table(**rows):
    ordered = [rows[k] for k in sorted(rows, key=lambda k: int(k[4:]))]
    return table_spec(
        "E-5.5",
        "in-situ BIST: signature-based coverage of the logic blocks",
        ["design", "sessions", "unit cov @16", "unit cov @64",
         "all-in-one cov", "scheduled cov"],
        ordered,
        ["claim shape: logic-block coverage high and growing with "
         "session length; the conflict-free session schedule never "
         "covers less than the all-in-one session"],
    )


def insitu_bist_flow(names: Sequence[str] | None = None,
                     slack: float = 1.5,
                     width: int = INSITU_BIST_WIDTH,
                     n_faults: int = INSITU_BIST_FAULTS,
                     backend: str | None = None,
                     shards: int | None = None) -> Flow:
    """In-situ BIST signature coverage of the logic blocks (E-5.5)."""
    names = list(names if names is not None else INSITU_BIST_NAMES)
    f = Flow("insitu_bist")
    for i, design in enumerate(names):
        f.stage(
            f"bist:{design}", insitu_bist_row,
            outputs=(f"row_{i}",),
            params={"design": design, "slack": slack, "width": width,
                    "n_faults": n_faults, "backend": backend,
                    "shards": shards},
            code_deps=("repro.cdfg", "repro.hls", "repro.bist",
                       "repro.gatelevel.bist_session",
                       "repro.gatelevel.kernel"),
        )
    f.stage(
        "table", insitu_bist_table,
        inputs=tuple(f"row_{i}" for i in range(len(names))),
        outputs=("table",),
    )
    return f


# ---------------------------------------------------------------------------
# hierarchical test generation (E-6)
# ---------------------------------------------------------------------------

HIER_WIDTH = 4
HIER_FAULT_SAMPLE = 40


def hier_build(width: int, fault_sample: int):
    from repro import hls
    from repro.cdfg import suite
    from repro.gatelevel import all_faults, expand_composite
    from repro.hls import build_controller

    cdfg = suite.figure1(width=width)
    alloc = hls.Allocation({"alu": 2})
    sched = hls.list_schedule(cdfg, alloc)
    fub = hls.bind_functional_units(cdfg, sched, alloc)
    ra = hls.assign_registers_left_edge(cdfg, sched)
    dp = hls.build_datapath(cdfg, sched, fub, ra)
    ctrl = build_controller(dp)
    composite = expand_composite(dp, ctrl)
    faults = [
        f for f in all_faults(composite)
        if f.net.startswith(("fa", "mx"))
    ][:fault_sample]
    return {
        "hier_cdfg": cdfg,
        "hier_fub": fub,
        "hier_composite": composite,
        "hier_steps": ctrl.num_steps,
        "hier_faults": faults,
    }


def hier_generate(hier_cdfg, hier_fub, width: int, budget: int):
    from repro.hier import hierarchical_test_suite, module_test_environments

    t0 = time.perf_counter()
    envs = module_test_environments(hier_cdfg, hier_fub)
    tests, uncovered = hierarchical_test_suite(
        hier_cdfg, envs, width=width, budget_per_module=budget
    )
    return {
        "hier_tests": tests,
        "hier_uncovered": uncovered,
        "hier_gen_seconds": time.perf_counter() - t0,
    }


def hier_apply(hier_composite, hier_steps, hier_tests, hier_faults,
               width: int, backend: str | None = None,
               shards: int | None = None, batch: bool | None = None):
    """Fault-simulate the composed tests at gate level (with fault
    dropping: a detected fault is never simulated again).

    With ``batch`` (default: ``REPRO_KERNEL_BATCH``) up to 64 composed
    tests pack along the pattern-width axis into one kernel invocation
    instead of one call per test.  Each packed column is exactly one
    test's constant-input sequence (absent input names default to 0 in
    both paths), and a fault counts as detected when *any* test
    detects it -- so ``hier_detected`` is identical either way; only
    the per-call overhead changes.
    """
    from repro.gatelevel.batch import resolve_batch
    from repro.gatelevel.fault_sim import fault_simulate

    t0 = time.perf_counter()
    n_detected = 0
    remaining = list(hier_faults)
    pattern_cycles = 0
    tests = list(hier_tests)
    if resolve_batch(batch):
        chunks = [tests[i:i + 64] for i in range(0, len(tests), 64)]
    else:
        chunks = [[t] for t in tests]
    for chunk in chunks:
        if not remaining:
            break
        w = len(chunk)
        piv: dict[str, int] = {"reset": 0}
        for col, test in enumerate(chunk):
            for name, val in test.inputs.items():
                for i in range(width):
                    key = f"pi_{name}_b{i}"
                    piv[key] = piv.get(key, 0) | (((val >> i) & 1) << col)
        seq = [dict(piv, reset=(1 << w) - 1)] + [piv] * (hier_steps + 1)
        pattern_cycles += len(seq) * w * len(remaining)
        results = fault_simulate(
            hier_composite, remaining, seq, width=w, drop_detected=True,
            backend=backend, shards=shards,
        )
        n_detected += sum(1 for hit in results.values() if hit)
        remaining = [f for f, hit in results.items() if not hit]
    elapsed = time.perf_counter() - t0
    if elapsed > 0:
        record_metric("patterns_per_s", round(pattern_cycles / elapsed, 1))
    return n_detected


def hier_flat_atpg(hier_composite, hier_faults, max_frames: int,
                   backtracks: int):
    from repro.gatelevel.seq_atpg import sequential_atpg

    t0 = time.perf_counter()
    detected = 0
    for fault in hier_faults:
        res = sequential_atpg(hier_composite, fault,
                              max_frames=max_frames,
                              backtrack_limit=backtracks)
        detected += res.detected
    return {
        "flat_detected": detected,
        "flat_seconds": time.perf_counter() - t0,
    }


def hier_table(hier_tests, hier_uncovered, hier_gen_seconds,
               hier_detected, hier_faults, flat_detected, flat_seconds):
    n = len(hier_faults)
    rows = [
        ("hierarchical [7,38]", f"{len(hier_tests)} tests",
         f"{hier_detected}/{n}", f"{hier_gen_seconds:.3f}"),
        ("flat sequential ATPG", f"{n} faults",
         f"{flat_detected}/{n}", f"{flat_seconds:.3f}"),
    ]
    return table_spec(
        "E-6",
        "[7,38] hierarchical test generation vs flat sequential ATPG",
        ["method", "tests / faults", "detected", "time (s)"],
        rows,
        ["claim shape: hierarchical generation is much faster at "
         "comparable coverage of the sampled unit faults"],
        extra={
            "det_h": hier_detected,
            "det_f": flat_detected,
            "t_hier": hier_gen_seconds,
            "t_flat": flat_seconds,
            "uncovered": hier_uncovered,
        },
    )


def hierarchical_flow(width: int = HIER_WIDTH,
                      fault_sample: int = HIER_FAULT_SAMPLE,
                      budget: int = 16,
                      backend: str | None = None,
                      shards: int | None = None,
                      batch: bool | None = None) -> Flow:
    """Hierarchical test generation vs flat sequential ATPG (E-6)."""
    f = Flow("hierarchical")
    f.stage(
        "build", hier_build,
        outputs=("hier_cdfg", "hier_fub", "hier_composite",
                 "hier_steps", "hier_faults"),
        params={"width": width, "fault_sample": fault_sample},
        code_deps=("repro.cdfg", "repro.hls", "repro.gatelevel"),
    )
    f.stage(
        "generate", hier_generate,
        inputs=("hier_cdfg", "hier_fub"),
        outputs=("hier_tests", "hier_uncovered", "hier_gen_seconds"),
        params={"width": width, "budget": budget},
        code_deps=("repro.hier",),
    )
    f.stage(
        "faultsim", hier_apply,
        inputs=("hier_composite", "hier_steps", "hier_tests",
                "hier_faults"),
        outputs=("hier_detected",),
        params={"width": width, "backend": backend, "shards": shards,
                "batch": batch},
        code_deps=("repro.gatelevel.fault_sim",
                   "repro.gatelevel.kernel",
                   "repro.gatelevel.batch"),
    )
    f.stage(
        "flat_atpg", hier_flat_atpg,
        inputs=("hier_composite", "hier_faults"),
        outputs=("flat_detected", "flat_seconds"),
        params={"max_frames": 6, "backtracks": 60},
        code_deps=("repro.gatelevel",),
    )
    f.stage(
        "table", hier_table,
        inputs=("hier_tests", "hier_uncovered", "hier_gen_seconds",
                "hier_detected", "hier_faults", "flat_detected",
                "flat_seconds"),
        outputs=("table",),
    )
    return f


# ---------------------------------------------------------------------------
# Figure 1 / Table 1 regeneration (F1, T1)
# ---------------------------------------------------------------------------

def figure1_variant_row(variant: str):
    from repro.sgraph import (
        build_sgraph,
        estimate_cost,
        minimum_feedback_vertex_set,
        nontrivial_cycles,
        self_loops,
    )
    from repro.survey import figure1_datapath

    g = build_sgraph(figure1_datapath(variant))
    return (
        f"figure1({variant})",
        len(nontrivial_cycles(g)),
        len(self_loops(g)),
        len(minimum_feedback_vertex_set(g)),
        f"{estimate_cost(g, respect_scan=False).score:.1f}",
    )


def figure1_loop_aware_row():
    from repro.cdfg.suite import figure1
    from repro.hls import Allocation
    from repro.scan import loop_aware_synthesis
    from repro.sgraph import (
        build_sgraph,
        estimate_cost,
        minimum_feedback_vertex_set,
        nontrivial_cycles,
        self_loops,
    )

    dp, _plan = loop_aware_synthesis(
        figure1(), Allocation({"alu": 2}), num_steps=3
    )
    g = build_sgraph(dp)
    return (
        "loop-aware [33]",
        len(nontrivial_cycles(g)),
        len(self_loops(g)),
        len(minimum_feedback_vertex_set(g)),
        f"{estimate_cost(g, respect_scan=False).score:.1f}",
    )


def figure1_table(row_b, row_c, row_loop_aware):
    return table_spec(
        "F1",
        "Figure 1: loops formed during assignment (3 steps, 2 adders)",
        ["variant", "nontrivial cycles", "self-loops", "scan regs needed",
         "ATPG cost score"],
        [row_b, row_c, row_loop_aware],
        ["paper: (b) needs one scanned register; (c) 'contains only two "
         "self-loops' and needs none"],
    )


def figure1_flow() -> Flow:
    """Figure 1: loops formed during register assignment (F1)."""
    f = Flow("figure1")
    for variant in ("b", "c"):
        f.stage(
            f"variant:{variant}", figure1_variant_row,
            outputs=(f"row_{variant}",),
            params={"variant": variant},
            code_deps=("repro.survey", "repro.sgraph"),
        )
    f.stage(
        "loop_aware", figure1_loop_aware_row,
        outputs=("row_loop_aware",),
        code_deps=("repro.cdfg", "repro.hls", "repro.scan",
                   "repro.sgraph"),
    )
    f.stage(
        "table", figure1_table,
        inputs=("row_b", "row_c", "row_loop_aware"),
        outputs=("table",),
    )
    return f


def table1_rows():
    from repro.survey import TABLE1

    return [
        (row.name, row.synthesis_base,
         " or ".join(l.value for l in row.levels), row.repro_flow)
        for row in TABLE1
    ]


def table1_table(t1_rows):
    return table_spec(
        "T1",
        "Operational Level of Testability Insertion (Table 1, verbatim)",
        ["Name", "Synthesis Base", "Insertion Level", "repro flow"],
        t1_rows,
    )


def table1_flow() -> Flow:
    """Table 1 verbatim: operational level of testability insertion (T1)."""
    f = Flow("table1")
    f.stage("rows", table1_rows, outputs=("t1_rows",),
            code_deps=("repro.survey",))
    f.stage("table", table1_table, inputs=("t1_rows",),
            outputs=("table",))
    return f


# ---------------------------------------------------------------------------
# corpus coverage (batchable) -- COV
# ---------------------------------------------------------------------------

def coverage_build(design: str):
    from repro.designs import resolve_design

    return resolve_design(design)


def _coverage_row(netlist, design: str, cov: float, n_patterns: int):
    """One coverage row.  Shared by the per-flow stage and the batched
    runner so both produce byte-identical artifacts."""
    from repro.gatelevel.faults import all_faults

    return (design, netlist.num_gates(), len(netlist.dffs()),
            len(all_faults(netlist)), n_patterns, f"{cov:.4f}")


def coverage_row(cov_netlist, design: str, n_patterns: int, seed: int,
                 backend: str | None = None):
    from repro.gatelevel.random_patterns import random_pattern_coverage

    cov = random_pattern_coverage(
        cov_netlist, n_patterns=n_patterns, seed=seed, backend=backend
    )
    return _coverage_row(cov_netlist, design, cov, n_patterns)


def coverage_table(cov_row):
    return table_spec(
        "COV",
        "random-pattern stuck-at coverage",
        ["design", "gates", "dffs", "faults", "patterns", "coverage"],
        [cov_row],
    )


def coverage_flow(design: str = "gs:400:3", n_patterns: int = 256,
                  seed: int = 1, backend: str | None = None) -> Flow:
    """Random-pattern coverage of one registered or genscale design
    (COV; batchable -- compatible queued submissions fuse)."""
    f = Flow("coverage")
    f.stage(
        "build", coverage_build,
        outputs=("cov_netlist",),
        params={"design": design},
        code_deps=("repro.designs", "repro.gatelevel.genscale"),
    )
    f.stage(
        "coverage", coverage_row,
        inputs=("cov_netlist",),
        outputs=("cov_row",),
        params={"design": design, "n_patterns": n_patterns,
                "seed": seed, "backend": backend},
        code_deps=("repro.gatelevel.random_patterns",
                   "repro.gatelevel.kernel",
                   "repro.gatelevel.batch"),
    )
    f.stage(
        "table", coverage_table,
        inputs=("cov_row",),
        outputs=("table",),
    )
    return f


def _filled_params(builder, params):
    """``params`` completed with the builder's defaults; raises
    ``KeyError`` on names the builder does not accept."""
    import inspect

    full: dict[str, Any] = {}
    for name, p in inspect.signature(builder).parameters.items():
        if p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD):
            continue
        full[name] = p.default
    for key, value in params.items():
        if key not in full:
            raise KeyError(key)
        full[key] = value
    return full


def coverage_batch_key(params):
    """Hashable compatibility key: submissions fusing together must
    agree on everything except the design under test."""
    full = _filled_params(coverage_flow, dict(params))
    full.pop("design")
    return tuple(sorted(full.items()))


def coverage_batch_run(params_list, cache=None, pools=None, jobs=1):
    """Run many ``coverage`` submissions as ONE fused kernel sweep.

    Returns one result dict per submission, shaped and byte-identical
    to what :meth:`repro.serve.scheduler.Scheduler._run` produces for
    a solo execution of the same params: the covers come from
    :func:`repro.gatelevel.batch.random_coverage_many` (proven
    byte-identical to per-design serial coverage) and the artifacts
    are rebuilt through the same row/table helpers the flow stages
    use.  Coalesced runs bypass the stage cache; stage keys are still
    reported so clients can correlate.
    """
    from types import SimpleNamespace

    from repro.designs import resolve_design
    from repro.flow.cli import render_artifacts
    from repro.flow.runner import Runner
    from repro.gatelevel.batch import random_coverage_many
    from repro.serve.scheduler import json_safe_artifacts

    full = [_filled_params(coverage_flow, dict(p)) for p in params_list]
    shared = full[0]
    netlists = [resolve_design(p["design"]) for p in full]
    covs = random_coverage_many(
        netlists, n_patterns=shared["n_patterns"], seed=shared["seed"],
        backend=shared["backend"],
    )
    runner = Runner(cache=cache, pools=pools)
    out = []
    for p, nl, cov in zip(full, netlists, covs):
        row = _coverage_row(nl, p["design"], cov, p["n_patterns"])
        artifacts = {
            "cov_netlist": nl,
            "cov_row": row,
            "table": coverage_table(row),
        }
        safe, omitted = json_safe_artifacts(artifacts)
        out.append({
            "rendered": render_artifacts(
                SimpleNamespace(artifacts=artifacts)
            ),
            "artifacts": safe,
            "omitted": omitted,
            "keys": runner.stage_keys(coverage_flow(**p)),
            "ok": True,
        })
    return out


#: flow name -> (batch_key_fn, batch_run_fn).  The serve scheduler's
#: coalescing window fuses queued submissions of the same flow whose
#: batch keys agree into one ``batch_run_fn`` invocation.
BATCHABLE: dict[str, tuple[Callable, Callable]] = {
    "coverage": (coverage_batch_key, coverage_batch_run),
}


# ---------------------------------------------------------------------------
# the d_machine CPU benchmark (DM)
# ---------------------------------------------------------------------------

def dmachine_build(width: int, nregs: int, ram_words: int):
    from repro.designs import build_dmachine

    return build_dmachine(width=width, nregs=nregs,
                          ram_words=ram_words)


def dmachine_scan_row(dm_netlist, width: int, nregs: int,
                      ram_words: int, n_faults: int, patterns: int,
                      seed: int, backend: str | None = None):
    """Scan-selection trade: random coverage full-scan vs core-scan
    (RAM bank unscanned) on the same fault sample."""
    from repro.designs import build_dmachine
    from repro.gatelevel.genscale import sample_faults
    from repro.gatelevel.random_patterns import random_pattern_coverage

    core = build_dmachine(width=width, nregs=nregs,
                          ram_words=ram_words, scan="core")
    faults = sample_faults(dm_netlist, n_faults, seed=seed)
    t0 = time.perf_counter()
    cov_full = random_pattern_coverage(
        dm_netlist, n_patterns=patterns, seed=seed, faults=faults,
        backend=backend,
    )
    cov_core = random_pattern_coverage(
        core, n_patterns=patterns, seed=seed, faults=faults,
        backend=backend,
    )
    elapsed = time.perf_counter() - t0
    return ("scan-select",
            f"full={len(dm_netlist.scan_dffs())} "
            f"core={len(core.scan_dffs())} dffs",
            f"cov full={cov_full:.3f}", f"cov core={cov_core:.3f}",
            f"{elapsed:.2f}")


def dmachine_atpg_row(dm_netlist, n_faults: int, backtracks: int,
                      seed: int, backend: str | None = None,
                      shards: int | None = None):
    from repro.gatelevel.genscale import sample_faults
    from repro.gatelevel.test_generation import generate_tests

    faults = sample_faults(dm_netlist, n_faults, seed=seed + 1)
    t0 = time.perf_counter()
    ts = generate_tests(dm_netlist, faults=faults,
                        backtrack_limit=backtracks, backend=backend,
                        shards=shards)
    elapsed = time.perf_counter() - t0
    if elapsed > 0:
        record_metric("faults_per_s",
                      round(ts.total_faults / elapsed, 1))
    return ("atpg", f"{ts.total_faults} faults",
            f"cov={ts.coverage:.3f}",
            f"eff={ts.test_efficiency:.3f} "
            f"aborted={len(ts.aborted)}",
            f"{elapsed:.2f}")


def dmachine_random_row(dm_netlist, patterns: int, n_faults: int,
                        seed: int, backend: str | None = None):
    from repro.gatelevel.genscale import sample_faults
    from repro.gatelevel.random_patterns import random_pattern_coverage

    faults = sample_faults(dm_netlist, n_faults, seed=seed + 2)
    t0 = time.perf_counter()
    cov = random_pattern_coverage(
        dm_netlist, n_patterns=patterns, seed=seed, faults=faults,
        backend=backend,
    )
    elapsed = time.perf_counter() - t0
    return ("random", f"{patterns} patterns", f"cov={cov:.3f}",
            f"{len(faults)} faults", f"{elapsed:.2f}")


def dmachine_bist_row(width: int, nregs: int, ram_words: int,
                      bist_cycles: int, n_faults: int, seed: int,
                      backend: str | None = None,
                      shards: int | None = None):
    """The no-scan, MISR-observed variant through BIST attribution."""
    from repro.designs import dmachine_bist
    from repro.gatelevel.bist_session import bist_fault_coverage
    from repro.gatelevel.genscale import sample_faults

    hw = dmachine_bist(width=width, nregs=nregs, ram_words=ram_words)
    faults = sample_faults(hw.netlist, n_faults, seed=seed + 3)
    t0 = time.perf_counter()
    cov = bist_fault_coverage(
        hw, sessions=[["u0"]], cycles=bist_cycles, faults=faults,
        backend=backend, shards=shards,
    )
    elapsed = time.perf_counter() - t0
    return ("bist", f"{bist_cycles} cycles", f"cov={cov:.3f}",
            f"{len(faults)} faults", f"{elapsed:.2f}")


def dmachine_table(dm_netlist, scan_row, atpg_row, random_row,
                   bist_row):
    return table_spec(
        "DM",
        f"d_machine CPU ({dm_netlist.name}): "
        f"{dm_netlist.num_gates()} gates, "
        f"{len(dm_netlist.dffs())} dffs",
        ["phase", "config", "result", "detail", "time (s)"],
        [scan_row, atpg_row, random_row, bist_row],
        ["hand-built 16-bit CPU (ALU / regfile / decode / RAM / PC+SP) "
         "through the full scan-selection, ATPG, random-pattern and "
         "BIST flows"],
        extra={"gates": dm_netlist.num_gates(),
               "dffs": len(dm_netlist.dffs())},
    )


def dmachine_flow(width: int = 16, nregs: int = 16,
                  ram_words: int = 128, n_faults: int = 240,
                  patterns: int = 256, bist_cycles: int = 128,
                  backtracks: int = 600, seed: int = 1,
                  backend: str | None = None,
                  shards: int | None = None) -> Flow:
    """The d_machine CPU through scan-selection / ATPG / random /
    BIST (DM)."""
    f = Flow("dmachine")
    f.stage(
        "build", dmachine_build,
        outputs=("dm_netlist",),
        params={"width": width, "nregs": nregs,
                "ram_words": ram_words},
        code_deps=("repro.designs",),
    )
    f.stage(
        "scan_select", dmachine_scan_row,
        inputs=("dm_netlist",),
        outputs=("scan_row",),
        params={"width": width, "nregs": nregs,
                "ram_words": ram_words, "n_faults": n_faults,
                "patterns": patterns, "seed": seed,
                "backend": backend},
        code_deps=("repro.designs",
                   "repro.gatelevel.random_patterns",
                   "repro.gatelevel.kernel"),
    )
    f.stage(
        "atpg", dmachine_atpg_row,
        inputs=("dm_netlist",),
        outputs=("atpg_row",),
        params={"n_faults": n_faults, "backtracks": backtracks,
                "seed": seed, "backend": backend, "shards": shards},
        code_deps=("repro.gatelevel.test_generation",
                   "repro.gatelevel.atpg"),
    )
    f.stage(
        "random", dmachine_random_row,
        inputs=("dm_netlist",),
        outputs=("random_row",),
        params={"patterns": patterns, "n_faults": n_faults,
                "seed": seed, "backend": backend},
        code_deps=("repro.gatelevel.random_patterns",
                   "repro.gatelevel.kernel"),
    )
    f.stage(
        "bist", dmachine_bist_row,
        outputs=("bist_row",),
        params={"width": width, "nregs": nregs,
                "ram_words": ram_words, "bist_cycles": bist_cycles,
                "n_faults": n_faults, "seed": seed,
                "backend": backend, "shards": shards},
        code_deps=("repro.designs",
                   "repro.gatelevel.bist_session",
                   "repro.gatelevel.kernel"),
    )
    f.stage(
        "table", dmachine_table,
        inputs=("dm_netlist", "scan_row", "atpg_row", "random_row",
                "bist_row"),
        outputs=("table",),
    )
    return f


def fuzz_smoke_run(trials: int, seed: int, max_gates: int,
                   oracles: str | None = None):
    """A small fixed-seed differential fuzzing campaign; raises on any
    non-match outcome so the flow (and CI) fails loudly."""
    import os
    import tempfile

    from repro.fuzz.campaign import CampaignConfig, run_campaign

    with tempfile.TemporaryDirectory() as td:
        config = CampaignConfig(
            seed=seed,
            trials=trials,
            max_gates=max_gates,
            oracles=tuple(oracles.split(",")) if oracles else None,
            exec_mode="inproc",
            minimize=False,
            journal=os.path.join(td, "journal.jsonl"),
            repro_dir=os.path.join(td, "repros"),
        )
        summary = run_campaign(config)
    out = summary["outcomes"]
    bad = out["divergence"] + out["crash"] + out["hang"]
    if bad:
        raise RuntimeError(
            f"fuzz smoke campaign found {bad} non-match outcomes: "
            f"{summary['findings']}"
        )
    return {
        "trials": summary["trials"],
        "arms": summary["arms"],
        "policy": summary["policy"],
        "outcomes": out,
    }


def fuzz_smoke_table(fuzz_summary):
    return table_spec(
        "FUZZ",
        "differential fuzz smoke campaign",
        ["trials", "arms", "policy", "match", "divergence", "crash",
         "hang"],
        [(
            fuzz_summary["trials"],
            fuzz_summary["arms"],
            fuzz_summary["policy"],
            fuzz_summary["outcomes"]["match"],
            fuzz_summary["outcomes"]["divergence"],
            fuzz_summary["outcomes"]["crash"],
            fuzz_summary["outcomes"]["hang"],
        )],
        notes=["every backend pair agreed on every generated design"],
    )


def fuzz_smoke_flow(trials: int = 8, seed: int = 0,
                    max_gates: int = 400,
                    oracles: str | None = None) -> Flow:
    """Fixed-seed differential fuzz campaign over generated designs
    (FUZZ; fails on any divergence/crash/hang)."""
    f = Flow("fuzz_smoke")
    f.stage(
        "campaign", fuzz_smoke_run,
        outputs=("fuzz_summary",),
        params={"trials": trials, "seed": seed,
                "max_gates": max_gates, "oracles": oracles},
        code_deps=("repro.fuzz",
                   "repro.gatelevel.genscale",
                   "repro.gatelevel.kernel",
                   "repro.gatelevel.fault_sim",
                   "repro.gatelevel.atpg",
                   "repro.gatelevel.bist_session",
                   "repro.gatelevel.batch"),
    )
    f.stage(
        "table", fuzz_smoke_table,
        inputs=("fuzz_summary",),
        outputs=("table",),
    )
    return f


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def report_flow(design: str = "iir2", slack: float = 1.5,
                width: int = 8) -> Flow:
    """Testability-report pipeline (lazy import: repro.report imports
    the flow engine, so the builder must not import it at load time)."""
    from repro.report import build_report_flow

    return build_report_flow(design=design, slack=slack, width=width)


FLOWS: dict[str, Callable[..., Flow]] = {
    "fullscan": fullscan_flow,
    "report": report_flow,
    "partial_scan": partial_scan_flow,
    "bist_sessions": bist_sessions_flow,
    "insitu_bist": insitu_bist_flow,
    "hierarchical": hierarchical_flow,
    "figure1": figure1_flow,
    "table1": table1_flow,
    "coverage": coverage_flow,
    "dmachine": dmachine_flow,
    "fuzz_smoke": fuzz_smoke_flow,
}


def get_flow(name: str, **params) -> Flow:
    try:
        builder = FLOWS[name]
    except KeyError:
        raise KeyError(
            f"unknown flow {name!r}; available: {', '.join(sorted(FLOWS))}"
        ) from None
    return builder(**params)


def describe_flow(name: str) -> dict[str, Any]:
    """The discoverable API surface of one flow.

    ``description`` is the first line of the builder's docstring;
    ``params`` maps each accepted builder parameter to the repr of its
    default.  Service clients (and ``python -m repro.flow list``) use
    this instead of guessing the accepted ``--param`` keys.
    """
    import inspect

    builder = FLOWS[name]
    doc = inspect.getdoc(builder) or ""
    description = doc.splitlines()[0].strip() if doc else ""
    params: dict[str, str] = {}
    for p in inspect.signature(builder).parameters.values():
        if p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD):
            continue
        params[p.name] = (
            "(required)" if p.default is p.empty else repr(p.default)
        )
    return {"name": name, "description": description, "params": params}


def describe_flows() -> list[dict[str, Any]]:
    """:func:`describe_flow` for every registered flow, sorted by name."""
    return [describe_flow(name) for name in sorted(FLOWS)]
