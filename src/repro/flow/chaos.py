"""Deterministic fault injection for flows and sharded kernels.

The resilience layer (:mod:`repro.flow.resilience`, the runner's pool
recovery, the kernels' shard fallbacks) makes promises -- worker death
is survived, hangs are killed, corrupt cache entries heal -- and this
module is how the test suite makes those promises falsifiable.  It
injects the failures on purpose, *deterministically*: a chaos plan
names injection **sites** and what happens there, a site's invocations
are counted through atomic marker files (shared across worker
processes), and each site misbehaves for its first ``times``
invocations and then behaves -- so "crash once, succeed on retry" is a
reproducible scenario, not a race.

Sites are plain strings the instrumented code passes to
:func:`checkpoint`:

* ``stage:<name>`` -- every flow stage execution (the runner calls it
  inside ``_execute``, so it fires in worker processes too);
* ``faultsim_shard:<i>`` / ``podem_shard:<i>`` / ``bist_shard:<i>`` --
  the sharded kernel workers.

Injection modes:

* ``crash``   -- raise :class:`ChaosError`;
* ``hang``    -- sleep ``hang_seconds`` (defeats timeouts, not logic);
* ``kill``    -- ``SIGKILL`` the current *worker* process, the
  realistic OOM-killer scenario that breaks a whole pool.  In the main
  process it degrades to ``crash`` so a serial fallback path can never
  kill the test runner.

Activation is by environment variable (:data:`CHAOS_ENV` names a JSON
plan file) so spawned worker processes inherit the plan with no
plumbing.  When the variable is unset, :func:`checkpoint` is a single
dict lookup -- production runs pay nothing.

Cache corruption is injected separately by
:func:`corrupt_cache_entries` (flip real on-disk entries to truncated
or garbage bytes, chosen deterministically by seed), because the cache
is attacked *between* runs, not during a call.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator, Sequence

CHAOS_ENV = "REPRO_CHAOS_PLAN"

MODES = ("crash", "hang", "kill")


class ChaosError(RuntimeError):
    """The failure the chaos injector raises at a ``crash`` site."""


@dataclass(frozen=True)
class Injection:
    """One misbehaving site: inject ``mode`` for the first ``times``
    invocations of ``site``, then behave."""

    site: str
    mode: str
    times: int = 1
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown chaos mode {self.mode!r}; pick from {MODES}"
            )


class ChaosPlan:
    """A set of injections plus the marker directory that makes their
    per-site invocation counters atomic across processes."""

    def __init__(self, injections: Sequence[Injection],
                 workdir: str | os.PathLike) -> None:
        self.injections = list(injections)
        self.workdir = Path(workdir)

    def match(self, site: str) -> Injection | None:
        for inj in self.injections:
            if inj.site == site:
                return inj
        return None

    def claim(self, site: str) -> int:
        """Atomically claim the next invocation index for ``site``.

        Marker files under ``workdir`` are created with ``O_EXCL``;
        the first process to create ``<site-hash>.<n>`` owns invocation
        ``n``.  Works across fork/spawn workers with no shared memory.
        """
        self.workdir.mkdir(parents=True, exist_ok=True)
        stem = hashlib.sha256(site.encode()).hexdigest()[:16]
        n = 0
        while True:
            try:
                fd = os.open(
                    self.workdir / f"{stem}.{n}",
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                n += 1
                continue
            os.close(fd)
            return n

    def invocations(self, site: str) -> int:
        """How many times ``site`` has been claimed so far."""
        stem = hashlib.sha256(site.encode()).hexdigest()[:16]
        n = 0
        while (self.workdir / f"{stem}.{n}").exists():
            n += 1
        return n

    # -- (de)serialisation -------------------------------------------

    def write(self, path: str | os.PathLike) -> Path:
        path = Path(path)
        path.write_text(json.dumps({
            "workdir": str(self.workdir),
            "injections": [asdict(i) for i in self.injections],
        }, indent=2))
        return path

    @classmethod
    def load(cls, path: str | os.PathLike) -> "ChaosPlan":
        data = json.loads(Path(path).read_text())
        return cls(
            [Injection(**i) for i in data["injections"]],
            data["workdir"],
        )


# -- the checkpoint the instrumented code calls -------------------------

_LOADED: dict[str, ChaosPlan] = {}


def checkpoint(site: str) -> None:
    """Fire any planned injection for ``site``; no-op when chaos is off.

    Reads the plan path from :data:`CHAOS_ENV` (inherited by worker
    processes), claims the site's next invocation index, and injects
    only while that index is below the injection's ``times``.
    """
    path = os.environ.get(CHAOS_ENV)
    if not path:
        return
    plan = _LOADED.get(path)
    if plan is None:
        plan = _LOADED[path] = ChaosPlan.load(path)
    inj = plan.match(site)
    if inj is None:
        return
    if plan.claim(site) >= inj.times:
        return
    _fire(inj, site)


def _fire(inj: Injection, site: str) -> None:
    if inj.mode == "hang":
        time.sleep(inj.hang_seconds)
        return
    if inj.mode == "kill":
        if multiprocessing.parent_process() is not None:
            os.kill(os.getpid(), signal.SIGKILL)
        # Main process: never kill the caller's interpreter -- degrade
        # to a crash so serial fallbacks stay testable.
        raise ChaosError(f"chaos: kill at {site} (main process)")
    raise ChaosError(f"chaos: injected crash at {site}")


@contextmanager
def active(injections: Sequence[Injection],
           directory: str | os.PathLike) -> Iterator[ChaosPlan]:
    """Write a plan under ``directory`` and export it for the scope.

    The convenience wrapper tests use::

        with chaos.active([Injection("stage:double", "kill")], tmp) :
            Runner().run(flow, jobs=2)
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "chaos_plan.json"
    plan = ChaosPlan(injections, directory / "markers")
    plan.write(path)
    prior = os.environ.get(CHAOS_ENV)
    os.environ[CHAOS_ENV] = str(path)
    try:
        yield plan
    finally:
        if prior is None:
            os.environ.pop(CHAOS_ENV, None)
        else:
            os.environ[CHAOS_ENV] = prior
        _LOADED.pop(str(path), None)


# -- cache corruption ---------------------------------------------------

def corrupt_cache_entries(
    root: str | os.PathLike,
    seed: int = 0,
    fraction: float = 1.0,
    mode: str = "truncate",
) -> list[Path]:
    """Deterministically damage on-disk flow-cache entries.

    Picks ``fraction`` of the ``*.pkl`` entries under ``root`` -- the
    choice is a hash ranking of ``(seed, filename)``, so the same seed
    always attacks the same entries -- and either truncates each to
    half its bytes or overwrites it with unpicklable garbage.  Returns
    the damaged paths; :meth:`repro.flow.cache.FlowCache.get` must
    quarantine every one of them and recompute.
    """
    if mode not in ("truncate", "garbage"):
        raise ValueError(f"unknown corruption mode {mode!r}")
    entries = sorted(Path(root).rglob("*.pkl"))
    if not entries:
        return []
    count = max(1, round(fraction * len(entries)))
    ranked = sorted(
        entries,
        key=lambda p: hashlib.sha256(f"{seed}:{p.name}".encode()).hexdigest(),
    )
    chosen = ranked[:count]
    for path in chosen:
        if mode == "truncate":
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 2])
        else:
            path.write_bytes(b"\x80\x04chaos-garbage\xff\xff")
    return chosen
