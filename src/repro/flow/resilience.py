"""Process-pool resilience primitives shared by the runner and kernels.

Three failure modes threaten every ``ProcessPoolExecutor`` path in the
repository, and each one used to be fatal or leaky:

* **worker death** (OOM kill, segfault, ``SIGKILL``) breaks the whole
  pool -- every outstanding future raises
  :class:`~concurrent.futures.process.BrokenProcessPool` and the pool
  refuses further submissions;
* **runaway work** (a hang, an accidental O(2^n) case) cannot be
  pre-empted through the executor API -- abandoning the future leaves
  the worker burning CPU until interpreter exit;
* **pool creation failure** (sandboxes that forbid ``fork``) must fall
  back to in-process execution rather than abort.

This module centralises the answers: :func:`kill_pool` actually
terminates worker processes so a recycled pool leaves no orphans;
:func:`backoff_seconds` derives deterministic exponential backoff with
hash-based jitter from a seed string (no global ``random`` state, so a
retried flow stays reproducible given its recipe); and
:func:`run_sharded` is the shared harness for fault-parallel kernel
sharding -- a crashed or timed-out shard is retried once in a fresh
pool, then executed in-process, preserving the byte-identical
positional merge the kernels rely on.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

# Start the multiprocessing resource tracker *now*, before any worker
# pool forks.  Forked workers then share the parent's tracker process,
# so a worker's attach-time shared-memory registrations collapse into
# the parent's create-time entry (the tracker cache is a set) instead
# of landing in a private tracker that warns about "leaked" segments
# the parent already unlinked.  Forked children skip this (module
# import is a no-op after fork); spawn children inherit the tracker fd.
try:
    from multiprocessing import resource_tracker as _resource_tracker

    _resource_tracker.ensure_running()
except Exception:  # pragma: no cover - tracker-less platforms
    pass

#: consecutive pool failures before the flow runner abandons process
#: pools and finishes the remaining stages serially.
POOL_FAILURE_LIMIT = 3

#: default per-attempt backoff parameters (seconds).
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

_POLL_SECONDS = 0.05


def is_pool_failure(exc: BaseException) -> bool:
    """True when ``exc`` means the executor itself died (not the task).

    ``BrokenProcessPool`` subclasses ``BrokenExecutor``; a worker that
    vanished mid-task surfaces as one of these on *every* outstanding
    future, so the task that triggered it is indistinguishable from
    innocent victims -- callers should re-dispatch all of them.
    """
    return isinstance(exc, concurrent.futures.BrokenExecutor)


def backoff_seconds(
    seed: str,
    attempt: int,
    base: float = BACKOFF_BASE,
    cap: float = BACKOFF_CAP,
) -> float:
    """Deterministic exponential backoff with hash-derived jitter.

    ``attempt`` counts completed attempts (1 = first retry).  The delay
    doubles per attempt and is jittered into ``[0.5, 1.5)`` of the raw
    value using a hash of ``(seed, attempt)`` -- stable across runs and
    processes, unlike ``random``-based jitter, so a flow recipe fully
    determines its retry schedule.
    """
    if attempt <= 0 or base <= 0:
        return 0.0
    raw = base * (2.0 ** (attempt - 1))
    digest = hashlib.sha256(f"{seed}:{attempt}".encode()).digest()
    jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return min(cap, raw * jitter)


def kill_pool(pool: ProcessPoolExecutor) -> int:
    """Shut a pool down and *terminate* its worker processes.

    ``shutdown(wait=False)`` alone leaves hung workers running forever;
    this grabs the worker list first, shuts the executor down without
    waiting, then terminates and joins every process that is still
    alive.  Returns the number of workers that had to be terminated
    (the pool-recycle bookkeeping the chaos suite asserts on).
    """
    procs = list((getattr(pool, "_processes", {}) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    killed = 0
    for p in procs:
        if p.is_alive():
            p.terminate()
            killed += 1
    for p in procs:
        p.join(timeout=5.0)
    return killed


class PoolProvider:
    """Where the runner gets its process pools from.

    The default provider reproduces the historical behaviour exactly:
    a fresh :class:`ProcessPoolExecutor` per :meth:`acquire`, a clean
    ``shutdown`` on :meth:`release`, and :func:`kill_pool` on
    :meth:`discard` (the pool is broken or hosts a runaway worker).

    Long-running callers (the ``repro.serve`` service layer) substitute
    a provider that keeps one warm pool alive across flow runs, so a
    request never pays worker spawn + module import again; the runner's
    recovery paths stay identical because they only ever talk to the
    provider.
    """

    def acquire(self, jobs: int) -> ProcessPoolExecutor:
        """A usable pool with (at least) ``jobs`` workers.

        May raise ``OSError``/``PermissionError`` in environments that
        forbid process creation; the runner falls back to serial.
        """
        return ProcessPoolExecutor(max_workers=jobs)

    def discard(self, pool: ProcessPoolExecutor) -> int:
        """The pool is poisoned (broken, or a worker must die): kill it."""
        return kill_pool(pool)

    def release(self, pool: ProcessPoolExecutor) -> None:
        """The flow is done with a healthy pool."""
        pool.shutdown(wait=True, cancel_futures=True)


#: process-global shard-pool provider (see :func:`set_shard_pool_provider`).
_SHARD_POOLS: PoolProvider | None = None


def set_shard_pool_provider(pools: PoolProvider | None) -> None:
    """Install a default :class:`PoolProvider` for :func:`run_sharded`.

    Long-running callers (the serve layer) point this at their warm
    pool so every kernel shard dispatch in the main process reuses
    persistent workers -- which is what makes the per-worker compiled
    caches pay off across jobs.  ``None`` restores the default
    (one fresh pool per sharded call).
    """
    global _SHARD_POOLS
    _SHARD_POOLS = pools


def _default_shard_pools() -> PoolProvider | None:
    # A forked worker inherits the module global, but the executor it
    # wraps belongs to the parent and is unusable here; nested shard
    # dispatch inside a pool worker builds its own pools as before.
    if multiprocessing.parent_process() is not None:
        return None
    return _SHARD_POOLS


def run_sharded(
    worker: Callable[[Any], Any],
    args_list: Sequence[Any],
    max_workers: int | None = None,
    retries: int = 1,
    timeout: float | None = None,
    pools: PoolProvider | None = None,
    label: str | None = None,
) -> tuple[list[Any], dict[str, Any]]:
    """Run ``worker(args)`` per element across a process pool, resiliently.

    Results come back positionally (``results[i]`` for ``args_list[i]``)
    so callers keep their deterministic, byte-identical merges.  Any
    shard whose worker crashes (exception), dies (broken pool), or
    exceeds ``timeout`` seconds is retried -- up to ``retries`` extra
    pool attempts, after which it runs **in-process** (last resort: the
    result is identical, only the parallelism is lost).  A broken or
    timed-out pool is killed (no orphaned workers) and rebuilt for the
    remaining shards.

    ``pools`` supplies the executors (default: the provider installed
    via :func:`set_shard_pool_provider`, else a fresh pool per call).
    A warm provider's pool is released, never shut down, so workers --
    and their per-process compiled caches -- survive across calls.

    Returns ``(results, info)`` where ``info`` counts ``shard_retries``
    (extra pool submissions), ``shard_fallbacks`` (shards finished
    in-process), ``pool_rebuilds``, and ``shard_errors`` (worker
    exceptions observed), with ``shard_error_detail`` mapping shard
    index -> ``(count, last exception repr)``.  A shard that exhausts
    its retries re-raises from the in-process run with the prior worker
    failures attached as a note, instead of silently masking them.

    ``label`` names the shard family (the callers' chaos checkpoint
    prefix, e.g. ``"faultsim_shard"``): a shard still running when
    ``timeout`` expires is recorded in ``shard_error_detail`` as a
    ``TimeoutError`` naming ``<label>:<shard>`` and the elapsed time --
    so a hang that later rescues in-process (or re-raises) carries the
    same forensics the crash/kill paths always had.
    """
    n = len(args_list)
    results: list[Any] = [None] * n
    attempts = [0] * n
    info: dict[str, Any] = {
        "shard_retries": 0, "shard_fallbacks": 0, "pool_rebuilds": 0,
        "shard_errors": 0, "shard_error_detail": {},
    }
    detail: dict[int, tuple[int, str]] = info["shard_error_detail"]

    def note_error(i: int, exc: BaseException) -> None:
        count = detail.get(i, (0, ""))[0] + 1
        detail[i] = (count, repr(exc))
        info["shard_errors"] += 1

    pending = list(range(n))
    if max_workers is None:
        max_workers = n
    provider = pools if pools is not None else _default_shard_pools()
    pool: ProcessPoolExecutor | None = None
    pool_usable = True

    def drop_pool(p: ProcessPoolExecutor) -> None:
        if provider is not None:
            provider.discard(p)
        else:
            kill_pool(p)

    try:
        while pending:
            # Shards out of pool budget run in-process, in order.
            exhausted = [i for i in pending
                         if attempts[i] > retries or not pool_usable]
            for i in exhausted:
                try:
                    results[i] = worker(args_list[i])
                except Exception as exc:
                    prior = detail.get(i)
                    if prior is not None and hasattr(exc, "add_note"):
                        exc.add_note(
                            f"shard {i} also failed {prior[0]}x in "
                            f"worker processes; last: {prior[1]}"
                        )
                    raise
                info["shard_fallbacks"] += 1
            pending = [i for i in pending if i not in exhausted]
            if not pending:
                break
            if pool is None:
                want = min(max_workers, len(pending))
                try:
                    if provider is not None:
                        pool = provider.acquire(want)
                    else:
                        pool = ProcessPoolExecutor(max_workers=want)
                except (OSError, PermissionError):
                    # No pools in this environment at all.
                    pool_usable = False
                    continue
            futures: dict[concurrent.futures.Future, int] = {}
            broken = False
            try:
                for i in pending:
                    if attempts[i]:
                        info["shard_retries"] += 1
                    attempts[i] += 1
                    futures[pool.submit(worker, args_list[i])] = i
            except concurrent.futures.BrokenExecutor:
                broken = True
            t_submit = time.monotonic()
            deadline = (t_submit + timeout) if timeout else None
            waiting = set(futures)
            while waiting and not broken:
                step = _POLL_SECONDS
                if deadline is not None:
                    step = min(step, max(0.0, deadline - time.monotonic()))
                done, waiting = concurrent.futures.wait(
                    waiting, timeout=step,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for fut in done:
                    i = futures[fut]
                    try:
                        results[i] = fut.result()
                    except concurrent.futures.BrokenExecutor:
                        broken = True
                    except Exception as exc:
                        # Stays pending; retried or run in-process --
                        # but never silently: the error is counted and
                        # surfaced if the in-process run fails too.
                        note_error(i, exc)
                    else:
                        pending.remove(i)
                if (deadline is not None and waiting
                        and time.monotonic() >= deadline):
                    # Runaway workers: the executor API cannot pre-empt
                    # them, so the whole pool is recycled.  Record which
                    # shards were hung (by checkpoint name) and for how
                    # long, so the eventual failure -- or the silent
                    # in-process rescue -- carries the forensics.
                    elapsed = time.monotonic() - t_submit
                    family = label or "shard"
                    for fut in waiting:
                        i = futures[fut]
                        note_error(i, TimeoutError(
                            f"{family}:{i} timed out after "
                            f"{elapsed:.2f}s (limit {timeout}s)"
                        ))
                    broken = True
            if broken or (pool is not None and getattr(pool, "_broken", False)):
                drop_pool(pool)
                pool = None
                info["pool_rebuilds"] += 1
    finally:
        if pool is not None:
            if provider is not None:
                provider.release(pool)
            else:
                pool.shutdown(wait=True, cancel_futures=True)
    return results, info
