"""Shared-memory payload plane for fault-parallel shard dispatch.

Every shard task used to pickle its full payload -- the netlist, the
pattern sequence, the fault chunk -- through the process-pool pipe, so
dispatching N shards shipped O(N x design x patterns) bytes and every
worker re-ran unpickle + compile from scratch.  This module publishes
the large payloads **once** into POSIX shared memory
(:mod:`multiprocessing.shared_memory`) and ships only tiny references
(name + shape + digest) through the pipe; workers map the segments
read-only and reuse decoded payloads across tasks via content-digest
caches.

Lifecycle discipline
--------------------

* The **parent owns every segment**: :class:`PayloadPlane` is a context
  manager that creates segments and close()+unlink()s all of them on
  exit (normal or exceptional), with a module-level ``atexit`` backstop.
  Workers never create segments, so a chaos-killed worker cannot leak
  one -- ``/dev/shm`` holds only ``repro_*`` entries for planes that are
  currently open.
* **Workers attach lazily** and keep attached segments in a bounded
  registry so numpy views stay backed while a task runs; evicted
  segments are closed (a still-exported view makes ``close`` raise
  ``BufferError``, in which case the entry is kept).  Pool workers
  share the parent's ``resource_tracker`` process, so their attach-time
  registrations collapse into the parent's create-time entry -- the
  parent's ``unlink()`` clears it exactly once, and a crashed tree
  still gets the segment reclaimed by the tracker (bpo-39959 is a
  spawn-separate-tracker problem this layout avoids).
* **Graceful fallback**: :func:`resolve_transport` degrades to the
  classic pickle path when shared memory is unavailable (no ``/dev/shm``,
  sealed sandbox) or when ``REPRO_SHARD_TRANSPORT=pickle`` forces it.
  The resilience harness's in-process serial fallback works under both
  transports -- the parent can attach its own segments -- so results
  stay byte-identical no matter which path executed.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    _shared_memory = None

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

TRANSPORT_ENV = "REPRO_SHARD_TRANSPORT"
CACHE_SIZE_ENV = "REPRO_WORKER_CACHE_SIZE"

#: canonical transport names (no aliases).
_TRANSPORT_CHOICES: dict[str, tuple[str, ...]] = {"shm": (), "pickle": ()}

#: prefix of every segment this module creates -- the leak checks in the
#: chaos suite glob ``/dev/shm/repro_*``.
SEGMENT_PREFIX = "repro_"

_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL
_counter = itertools.count()


def default_cache_size() -> int:
    """Worker-side payload/netlist cache bound (``REPRO_WORKER_CACHE_SIZE``)."""
    from repro.knobs import env_int

    return env_int(CACHE_SIZE_ENV, 8, minimum=1)


def payload_nbytes(obj: Any) -> int:
    """Bytes ``obj`` would cost through the process-pool pipe."""
    try:
        return len(pickle.dumps(obj, protocol=_PICKLE_PROTO))
    except Exception:
        return 0


# ---------------------------------------------------------------------------
# transport resolution

_SHM_PROBE: bool | None = None


def shm_available() -> bool:
    """True when a shared-memory segment can actually be created (cached
    probe -- sealed sandboxes and shm-less platforms return False)."""
    global _SHM_PROBE
    if _SHM_PROBE is None:
        if _shared_memory is None:
            _SHM_PROBE = False
        else:
            try:
                seg = _shared_memory.SharedMemory(create=True, size=16)
                seg.close()
                seg.unlink()
                _SHM_PROBE = True
            except Exception:
                _SHM_PROBE = False
    return _SHM_PROBE


def resolve_transport(transport: str | None = None) -> str:
    """Normalise the shard transport: explicit arg > env > auto.

    Auto picks ``shm`` when shared memory works here and falls back to
    ``pickle`` otherwise; an explicit ``shm`` request also degrades
    gracefully when the probe fails (the results are identical either
    way, only the dispatch cost differs).
    """
    from repro.knobs import env_choice, normalize_choice

    if transport is None:
        choice = os.environ.get(TRANSPORT_ENV, "").strip()
        if not choice:
            return "shm" if shm_available() else "pickle"
        transport = env_choice(TRANSPORT_ENV, "shm", _TRANSPORT_CHOICES)
    else:
        transport = normalize_choice(transport, "transport",
                                     _TRANSPORT_CHOICES)
    if transport == "shm" and not shm_available():
        return "pickle"
    return transport


# ---------------------------------------------------------------------------
# parent side: publishing

@dataclass(frozen=True)
class ShmHandle:
    """A reference to one published segment -- all a shard arg carries."""

    name: str
    nbytes: int
    shape: tuple[int, ...]   # () for raw byte payloads
    dtype: str               # "" for raw byte payloads


@dataclass(frozen=True)
class ObjectRef:
    """A pickled object published in shared memory, keyed by digest.

    Workers cache the unpickled object by ``digest``, so a warm worker
    decodes each distinct payload once per pool generation no matter how
    many shards or repeat calls reference it.
    """

    digest: str
    handle: ShmHandle


_LIVE_PLANES: "set[PayloadPlane]" = set()
_ATEXIT_INSTALLED = False


def _atexit_close_planes() -> None:  # pragma: no cover - interpreter exit
    for plane in list(_LIVE_PLANES):
        plane.close()


class PayloadPlane:
    """All segments published for one sharded dispatch; parent-owned.

    Use as a context manager around ``run_sharded``: segments stay alive
    (and attachable, including by the in-process fallback) until every
    shard has finished, then are closed and unlinked even when a shard
    raises.
    """

    def __init__(self) -> None:
        self._segments: list[Any] = []
        self.total_bytes = 0
        self.closed = False
        global _ATEXIT_INSTALLED
        if not _ATEXIT_INSTALLED:
            atexit.register(_atexit_close_planes)
            _ATEXIT_INSTALLED = True
        _LIVE_PLANES.add(self)

    def _create(self, nbytes: int) -> Any:
        if _shared_memory is None:
            raise OSError("shared memory unsupported on this platform")
        name = (f"{SEGMENT_PREFIX}{os.getpid()}_{next(_counter)}"
                f"_{os.urandom(3).hex()}")
        seg = _shared_memory.SharedMemory(
            name=name, create=True, size=max(1, nbytes)
        )
        self._segments.append(seg)
        self.total_bytes += max(1, nbytes)
        return seg

    def publish_bytes(self, payload: bytes) -> ShmHandle:
        seg = self._create(len(payload))
        seg.buf[:len(payload)] = payload
        return ShmHandle(seg.name, len(payload), (), "")

    def publish_array(self, arr) -> ShmHandle:
        """Publish a C-contiguous numpy array; workers map it zero-copy."""
        arr = _np.ascontiguousarray(arr)
        seg = self._create(arr.nbytes)
        if arr.nbytes:
            view = _np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            view[...] = arr
        return ShmHandle(seg.name, arr.nbytes, tuple(arr.shape),
                         arr.dtype.str)

    def publish_object(self, obj: Any, blob: bytes | None = None,
                       digest: str | None = None) -> ObjectRef:
        """Pickle ``obj`` into a segment; callers may pass a pre-pickled
        ``blob`` (and its ``digest``) to reuse a memoised serialisation."""
        if blob is None:
            blob = pickle.dumps(obj, protocol=_PICKLE_PROTO)
        if digest is None:
            digest = hashlib.sha256(blob).hexdigest()
        return ObjectRef(digest, self.publish_bytes(blob))

    def close(self) -> None:
        """Close and unlink every published segment (idempotent)."""
        if self.closed:
            return
        self.closed = True
        _LIVE_PLANES.discard(self)
        for seg in self._segments:
            try:
                seg.close()
            except Exception:
                pass
            try:
                seg.unlink()
            except Exception:
                pass
        self._segments.clear()

    def __enter__(self) -> "PayloadPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# worker side: attaching

#: attached segments, name -> SharedMemory, bounded LRU.  Entries must
#: outlive any numpy view handed out for them; eviction closes the
#: mapping, and a segment with a live exported view survives eviction
#: (``close`` raises ``BufferError`` and the entry is re-kept).
_ATTACHED: "OrderedDict[str, Any]" = OrderedDict()
_ATTACHED_LIMIT = 64

#: decoded object payloads, digest -> object, bounded by
#: ``REPRO_WORKER_CACHE_SIZE``.
_OBJECTS: "OrderedDict[str, Any]" = OrderedDict()
_STATS = {"object_hits": 0, "object_misses": 0}
_LOCK = threading.Lock()


def _attach(name: str):
    seg = _ATTACHED.get(name)
    if seg is not None:
        _ATTACHED.move_to_end(name)
        return seg
    # Attaching registers the name with the resource tracker (CPython
    # registers unconditionally, bpo-39959) -- but parent and pool
    # workers share one tracker process whose cache is a *set* of
    # names, so a worker's registration collapses into the parent's
    # create-time entry.  No manual unregister: the parent's unlink()
    # removes the single entry, and if the whole tree dies first the
    # tracker unlinks the segment itself -- the crash backstop.
    seg = _shared_memory.SharedMemory(name=name)
    _ATTACHED[name] = seg
    while len(_ATTACHED) > _ATTACHED_LIMIT:
        victim, vseg = _ATTACHED.popitem(last=False)
        try:
            vseg.close()
        except BufferError:
            _ATTACHED[victim] = vseg  # a view is still live; keep it
            _ATTACHED.move_to_end(victim, last=False)
            break
        except Exception:
            pass
    return seg


def attach_bytes(handle: ShmHandle) -> bytes:
    with _LOCK:
        seg = _attach(handle.name)
        return bytes(seg.buf[:handle.nbytes])


def attach_array(handle: ShmHandle):
    """A zero-copy numpy view over a published array segment.

    The view is only valid while the task that attached it runs; code
    must not stash it across tasks (eviction would invalidate it).
    """
    with _LOCK:
        seg = _attach(handle.name)
        return _np.ndarray(handle.shape, dtype=_np.dtype(handle.dtype),
                           buffer=seg.buf)


def fetch_object(ref: ObjectRef) -> Any:
    """The unpickled payload behind ``ref``, cached by content digest."""
    with _LOCK:
        hit = _OBJECTS.get(ref.digest)
        if hit is not None:
            _OBJECTS.move_to_end(ref.digest)
            _STATS["object_hits"] += 1
            return hit
    blob = attach_bytes(ref.handle)
    obj = pickle.loads(blob)
    with _LOCK:
        _STATS["object_misses"] += 1
        _OBJECTS[ref.digest] = obj
        limit = default_cache_size()
        while len(_OBJECTS) > limit:
            _OBJECTS.popitem(last=False)
    return obj


def worker_cache_stats() -> dict[str, int]:
    """Per-process payload-cache counters (tests and ``/metrics``)."""
    with _LOCK:
        return dict(_STATS, objects=len(_OBJECTS),
                    attached=len(_ATTACHED))
