"""Per-stage observability for flow runs.

The runner records one :class:`StageMetric` per stage (wall time, cache
hit/miss, attempts, artifact bytes) into a :class:`FlowMetrics`, which
dumps as JSON (``--metrics out.json``) and renders as a fixed-width
summary table.

Stage functions can report domain numbers -- fault-sim patterns/sec,
ATPG backtracks, whatever -- by calling :func:`record_metric` while they
run; the runner scopes a collector around each stage call (also inside
worker processes) and attaches the values to that stage's metric.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

_ACTIVE: list[dict[str, Any]] = []


def record_metric(name: str, value: Any) -> None:
    """Attach a custom number to the currently running stage (no-op
    when called outside a flow run, so library code can call it
    unconditionally)."""
    if _ACTIVE:
        _ACTIVE[-1][name] = value


def metrics_active() -> bool:
    """True while a stage collector is open -- lets library code skip
    metric computations (e.g. pickling shard args to size them) that
    nobody would see."""
    return bool(_ACTIVE)


class _Collector:
    """Context manager the runner wraps around each stage call."""

    def __enter__(self) -> dict[str, Any]:
        d: dict[str, Any] = {}
        _ACTIVE.append(d)
        return d

    def __exit__(self, *exc) -> None:
        _ACTIVE.pop()


def collect() -> _Collector:
    return _Collector()


@dataclass
class StageMetric:
    stage: str
    status: str = "pending"   # hit | ran | failed | skipped
    seconds: float = 0.0
    attempts: int = 0
    cached: bool = False      # result came from / was written to cache
    artifact_bytes: int = 0   # pickled size of outputs (cache entry
    #                           size when cached, measured directly for
    #                           uncached stages)
    key: str = ""
    error: str = ""
    custom: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        d = {
            "stage": self.stage,
            "status": self.status,
            "seconds": round(self.seconds, 6),
            "attempts": self.attempts,
            "cached": self.cached,
            "artifact_bytes": self.artifact_bytes,
            "key": self.key,
        }
        if self.error:
            d["error"] = self.error
        if self.custom:
            d["custom"] = self.custom
        return d


@dataclass
class FlowMetrics:
    flow: str
    jobs: int = 1
    started: float = field(default_factory=time.time)
    finished: float = 0.0
    stages: list[StageMetric] = field(default_factory=list)
    #: resilience bookkeeping (see repro.flow.resilience): pools torn
    #: down because a worker died, pools recycled to kill a runaway
    #: (timed-out) worker, whether the runner gave up on pools and
    #: finished serially, and cache entries quarantined as corrupt.
    pool_rebuilds: int = 0
    pool_recycles: int = 0
    serial_fallback: bool = False
    cache_corrupt: int = 0

    def metric(self, stage: str) -> StageMetric:
        for m in self.stages:
            if m.stage == stage:
                return m
        m = StageMetric(stage=stage)
        self.stages.append(m)
        return m

    @property
    def cache_hits(self) -> int:
        return sum(1 for m in self.stages if m.status == "hit")

    @property
    def cache_misses(self) -> int:
        return sum(1 for m in self.stages if m.status == "ran")

    @property
    def wall_seconds(self) -> float:
        end = self.finished or time.time()
        return end - self.started

    @property
    def peak_artifact_bytes(self) -> int:
        return max((m.artifact_bytes for m in self.stages), default=0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "flow": self.flow,
            "jobs": self.jobs,
            "wall_seconds": round(self.wall_seconds, 6),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "peak_artifact_bytes": self.peak_artifact_bytes,
            "pool_rebuilds": self.pool_rebuilds,
            "pool_recycles": self.pool_recycles,
            "serial_fallback": self.serial_fallback,
            "cache_corrupt": self.cache_corrupt,
            "stages": [m.to_dict() for m in self.stages],
        }

    def dump(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def render(self) -> str:
        header = ["stage", "status", "time (s)", "attempts", "bytes",
                  "custom"]
        rows: list[Sequence[object]] = []
        for m in self.stages:
            custom = " ".join(
                f"{k}={v:.1f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(m.custom.items())
            )
            rows.append([
                m.stage, m.status, f"{m.seconds:.3f}", m.attempts,
                m.artifact_bytes or "-", custom,
            ])
        lines = [
            f"flow {self.flow}: {self.cache_hits} hit / "
            f"{self.cache_misses} ran, jobs={self.jobs}, "
            f"wall {self.wall_seconds:.2f}s"
        ]
        events = []
        if self.pool_rebuilds:
            events.append(f"pool_rebuilds={self.pool_rebuilds}")
        if self.pool_recycles:
            events.append(f"pool_recycles={self.pool_recycles}")
        if self.serial_fallback:
            events.append("serial_fallback")
        if self.cache_corrupt:
            events.append(f"cache_corrupt={self.cache_corrupt}")
        if events:
            lines.append("resilience: " + " ".join(events))
        lines.append(render_table(header, rows))
        return "\n".join(lines)


def column_widths(
    header: Sequence[object], rows: Sequence[Sequence[object]]
) -> list[int]:
    """Column widths covering header and every (possibly ragged) row."""
    widths = [max(1, len(str(h))) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(str(cell)))
    return widths


def render_table(
    header: Sequence[object], rows: Sequence[Sequence[object]]
) -> str:
    """Minimal fixed-width table used for metrics and CLI output."""
    widths = column_widths(header, rows)
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(v).ljust(w) for v, w in zip(row, widths))
        )
    return "\n".join(lines)
