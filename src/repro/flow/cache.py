"""Content-addressed artifact cache for flow stages.

A stage's cache key is a recipe hash, computed *before* the stage runs
from things that fully determine its output:

* the stage's code fingerprint (explicit ``version`` + source of the
  stage function + source of its declared ``code_deps`` modules), and
* the digests of its inputs -- for flow-level external inputs a
  canonical value hash, for upstream artifacts the producing stage's
  own key (so a change anywhere upstream ripples downstream, and an
  unchanged upstream keeps its key without ever serialising the
  artifact).

Keys are therefore stable across processes and sessions (no reliance on
pickle byte-stability or hash randomisation), which is what makes the
on-disk cache under ``.flowcache/`` reusable between runs.

Entries are pickled atomically (temp file + rename) so concurrent
writers -- parallel stages, or two runs racing -- can only ever publish
complete entries.  Unpicklable artifacts degrade gracefully: the stage
result stays in memory for the current run and the entry is skipped.

One :class:`FlowCache` instance may be shared by concurrent threads
(the service layer runs many flows against a single store): every
public method takes an internal re-entrant lock, and cross-*process*
safety rests on the atomic-write discipline above -- every mutation of
an entry file is either ``os.replace`` of a complete temp file
(:meth:`put`), ``os.replace`` to the quarantine name
(:meth:`_quarantine`), or ``unlink``; no entry is ever written in
place, so a reader in any process sees a complete entry or none.

The cache **self-heals**: an entry that exists but cannot be loaded
(truncated write, bit rot, format drift, injected chaos) is
*quarantined* -- renamed to ``<key>.corrupt`` -- instead of silently
re-read and re-failed on every subsequent run.  Quarantines are
counted on the instance (``corrupt_quarantined``; the runner surfaces
the number as ``cache_corrupt`` in flow metrics) and :meth:`fsck`
scans the whole store on demand (``python -m repro.flow fsck``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from pathlib import Path
from typing import Any, Mapping

DEFAULT_CACHE_DIR = ".flowcache"
CACHE_DIR_ENV = "REPRO_FLOWCACHE"
_FORMAT = 1


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8", "replace")).hexdigest()


def _canonical(value: Any) -> str:
    """A stable, recursive textual form for digesting plain values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return f"{type(value).__name__}:{value!r}"
    if isinstance(value, bytes):
        return f"bytes:{hashlib.sha256(value).hexdigest()}"
    if isinstance(value, (list, tuple)):
        inner = ",".join(_canonical(v) for v in value)
        return f"{type(value).__name__}:[{inner}]"
    if isinstance(value, (set, frozenset)):
        inner = ",".join(sorted(_canonical(v) for v in value))
        return f"set:[{inner}]"
    if isinstance(value, Mapping):
        inner = ",".join(
            f"{_canonical(k)}={_canonical(v)}"
            for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
        return f"map:{{{inner}}}"
    # Last resort for richer objects handed in as flow inputs/params;
    # repr must then be deterministic for caching to be effective.
    return f"{type(value).__name__}:{value!r}"


def value_digest(value: Any) -> str:
    """Stable digest of a plain (external-input or param) value."""
    return _sha(_canonical(value))


def stage_key(
    stage_name: str,
    fingerprint: str,
    params: Mapping[str, Any],
    input_digests: Mapping[str, str],
) -> str:
    """The recipe hash identifying one stage execution."""
    return _sha(
        "\n".join([
            f"format:{_FORMAT}",
            f"stage:{stage_name}",
            f"code:{fingerprint}",
            f"params:{_canonical(dict(params))}",
            "inputs:" + ",".join(
                f"{k}={input_digests[k]}" for k in sorted(input_digests)
            ),
        ])
    )


def artifact_digest(producer_key: str, artifact: str) -> str:
    """Digest of a stage-produced artifact: the producer's recipe key."""
    return _sha(f"{producer_key}/{artifact}")


class FlowCache:
    """Pickle-backed stage-result store under a cache directory."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = Path(root)
        #: entries quarantined by this instance (monotone counter).
        self.corrupt_quarantined = 0
        # Re-entrant so subclasses can take it around a super() call.
        self._lock = threading.RLock()

    # The lock is process-local state; a cache that travels through
    # pickle (e.g. inside a captured closure) gets a fresh one.
    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    @staticmethod
    def _load_entry(path: Path) -> tuple[dict[str, Any] | None, bool]:
        """``(artifacts, corrupt)`` for one entry file.

        A missing file is a plain miss (``(None, False)``); a file that
        exists but cannot be loaded or fails validation is corrupt.
        """
        try:
            fh = open(path, "rb")
        except FileNotFoundError:
            return None, False
        except OSError:
            return None, True
        try:
            with fh:
                entry = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, KeyError, MemoryError, TypeError,
                ValueError):
            return None, True
        if not isinstance(entry, dict) or entry.get("format") != _FORMAT:
            return None, True
        artifacts = entry.get("artifacts")
        if not isinstance(artifacts, dict):
            return None, True
        return artifacts, False

    def _quarantine(self, path: Path) -> Path | None:
        """Move a corrupt entry aside so it is never re-read.

        Renamed to ``<key>.corrupt`` next to the entry; a rename that
        itself fails (read-only store) falls back to deletion, and a
        failure of *that* leaves the file -- the caller already treats
        it as a miss either way.
        """
        target = path.with_suffix(".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                return None
            return None
        return target

    def get(self, key: str) -> dict[str, Any] | None:
        """Load the artifacts for ``key``; quarantine corrupt entries.

        Returns None on a miss *and* on corruption -- but a corrupt
        entry is also renamed to ``<key>.corrupt`` (so the next run is
        a clean miss that recomputes and rewrites it) and counted in
        ``corrupt_quarantined``.
        """
        with self._lock:
            path = self._path(key)
            artifacts, corrupt = self._load_entry(path)
            if corrupt:
                self._quarantine(path)
                self.corrupt_quarantined += 1
                return None
            return artifacts

    def size(self, key: str) -> int:
        """On-disk size of the entry for ``key`` (0 if absent)."""
        try:
            return self._path(key).stat().st_size
        except OSError:
            return 0

    def put(self, key: str, stage_name: str,
            artifacts: Mapping[str, Any]) -> int:
        """Persist artifacts; returns bytes written (-1 if unpicklable)."""
        entry = {
            "format": _FORMAT,
            "stage": stage_name,
            "artifacts": dict(artifacts),
        }
        try:
            blob = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return -1
        with self._lock:
            path = self._path(key)
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    dir=path.parent, prefix=".tmp-", suffix=".pkl"
                )
                try:
                    with os.fdopen(fd, "wb") as fh:
                        fh.write(blob)
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
            except OSError:
                return -1
        return len(blob)

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        with self._lock:
            n = 0
            if not self.root.exists():
                return 0
            for p in self.root.rglob("*.pkl"):
                try:
                    p.unlink()
                    n += 1
                except OSError:
                    pass
            return n

    def fsck(self, remove: bool = False) -> dict[str, Any]:
        """Scan every entry; quarantine the unreadable ones.

        Loads each ``*.pkl`` under the root the way :meth:`get` would;
        corrupt entries are quarantined (renamed to ``<key>.corrupt``).
        With ``remove=True`` corrupt entries -- including previously
        quarantined ``*.corrupt`` files -- are deleted instead of kept.

        Returns a report::

            {"ok": int, "corrupt": [paths quarantined this scan],
             "quarantined": [pre-existing *.corrupt files],
             "removed": int}
        """
        report: dict[str, Any] = {
            "ok": 0, "corrupt": [], "quarantined": [], "removed": 0,
        }
        with self._lock:
            if not self.root.exists():
                return report
            for path in sorted(self.root.rglob("*.pkl")):
                _, corrupt = self._load_entry(path)
                if not corrupt:
                    report["ok"] += 1
                    continue
                if remove:
                    try:
                        path.unlink()
                        report["removed"] += 1
                    except OSError:
                        pass
                    report["corrupt"].append(str(path))
                else:
                    target = self._quarantine(path)
                    report["corrupt"].append(str(target or path))
                self.corrupt_quarantined += 1
            for path in sorted(self.root.rglob("*.corrupt")):
                if str(path) in report["corrupt"]:
                    continue
                report["quarantined"].append(str(path))
                if remove:
                    try:
                        path.unlink()
                        report["removed"] += 1
                    except OSError:
                        pass
            return report
