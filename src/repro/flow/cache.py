"""Content-addressed artifact cache for flow stages.

A stage's cache key is a recipe hash, computed *before* the stage runs
from things that fully determine its output:

* the stage's code fingerprint (explicit ``version`` + source of the
  stage function + source of its declared ``code_deps`` modules), and
* the digests of its inputs -- for flow-level external inputs a
  canonical value hash, for upstream artifacts the producing stage's
  own key (so a change anywhere upstream ripples downstream, and an
  unchanged upstream keeps its key without ever serialising the
  artifact).

Keys are therefore stable across processes and sessions (no reliance on
pickle byte-stability or hash randomisation), which is what makes the
on-disk cache under ``.flowcache/`` reusable between runs.

Entries are pickled atomically (temp file + rename) so concurrent
writers -- parallel stages, or two runs racing -- can only ever publish
complete entries.  Unpicklable artifacts degrade gracefully: the stage
result stays in memory for the current run and the entry is skipped.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Mapping

DEFAULT_CACHE_DIR = ".flowcache"
CACHE_DIR_ENV = "REPRO_FLOWCACHE"
_FORMAT = 1


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8", "replace")).hexdigest()


def _canonical(value: Any) -> str:
    """A stable, recursive textual form for digesting plain values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return f"{type(value).__name__}:{value!r}"
    if isinstance(value, bytes):
        return f"bytes:{hashlib.sha256(value).hexdigest()}"
    if isinstance(value, (list, tuple)):
        inner = ",".join(_canonical(v) for v in value)
        return f"{type(value).__name__}:[{inner}]"
    if isinstance(value, (set, frozenset)):
        inner = ",".join(sorted(_canonical(v) for v in value))
        return f"set:[{inner}]"
    if isinstance(value, Mapping):
        inner = ",".join(
            f"{_canonical(k)}={_canonical(v)}"
            for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
        return f"map:{{{inner}}}"
    # Last resort for richer objects handed in as flow inputs/params;
    # repr must then be deterministic for caching to be effective.
    return f"{type(value).__name__}:{value!r}"


def value_digest(value: Any) -> str:
    """Stable digest of a plain (external-input or param) value."""
    return _sha(_canonical(value))


def stage_key(
    stage_name: str,
    fingerprint: str,
    params: Mapping[str, Any],
    input_digests: Mapping[str, str],
) -> str:
    """The recipe hash identifying one stage execution."""
    return _sha(
        "\n".join([
            f"format:{_FORMAT}",
            f"stage:{stage_name}",
            f"code:{fingerprint}",
            f"params:{_canonical(dict(params))}",
            "inputs:" + ",".join(
                f"{k}={input_digests[k]}" for k in sorted(input_digests)
            ),
        ])
    )


def artifact_digest(producer_key: str, artifact: str) -> str:
    """Digest of a stage-produced artifact: the producer's recipe key."""
    return _sha(f"{producer_key}/{artifact}")


class FlowCache:
    """Pickle-backed stage-result store under a cache directory."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> dict[str, Any] | None:
        """Load the artifacts for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("format") != _FORMAT:
            return None
        artifacts = entry.get("artifacts")
        return artifacts if isinstance(artifacts, dict) else None

    def size(self, key: str) -> int:
        """On-disk size of the entry for ``key`` (0 if absent)."""
        try:
            return self._path(key).stat().st_size
        except OSError:
            return 0

    def put(self, key: str, stage_name: str,
            artifacts: Mapping[str, Any]) -> int:
        """Persist artifacts; returns bytes written (-1 if unpicklable)."""
        entry = {
            "format": _FORMAT,
            "stage": stage_name,
            "artifacts": dict(artifacts),
        }
        try:
            blob = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return -1
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return -1
        return len(blob)

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        if not self.root.exists():
            return 0
        for p in self.root.rglob("*.pkl"):
            try:
                p.unlink()
                n += 1
            except OSError:
                pass
        return n
