"""``repro.flow`` -- a cached, parallel flow engine for synthesis→test
pipelines (survey-wide orchestration).

Every experiment in this repository is the same shape of pipeline --
CDFG → schedule/bind → data path → DFT transform → gate-level expand →
fault-sim/ATPG → coverage -- so the engine models them uniformly:

* :class:`Stage` -- a pure function ``(inputs) -> artifacts`` with a
  code-version, params, optional timeout/retry policy;
* :class:`Flow` -- a DAG of stages wired by named artifacts;
* :class:`Runner` -- executes flows serially or across a process pool
  (``jobs``), with content-addressed caching under ``.flowcache/`` and
  per-stage metrics (:class:`FlowMetrics`).

Canonical flow definitions for the library's pipelines live in
:mod:`repro.flow.flows`; ``python -m repro.flow run <flow>`` drives
them from the command line.
"""

from repro.flow.cache import FlowCache, stage_key, value_digest
from repro.flow.chaos import ChaosError
from repro.flow.graph import Flow, FlowDefinitionError
from repro.flow.metrics import FlowMetrics, StageMetric, record_metric
from repro.flow.resilience import backoff_seconds, run_sharded
from repro.flow.runner import (
    FlowError,
    FlowResult,
    Runner,
    Unavailable,
    is_unavailable,
)
from repro.flow.stage import Stage

__all__ = [
    "ChaosError",
    "Flow",
    "FlowCache",
    "FlowDefinitionError",
    "FlowError",
    "FlowMetrics",
    "FlowResult",
    "Runner",
    "Stage",
    "StageMetric",
    "Unavailable",
    "backoff_seconds",
    "is_unavailable",
    "record_metric",
    "run_sharded",
    "stage_key",
    "value_digest",
]
