"""Control-signal implication analysis ([14], survey section 3.5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.hls.controller import Controller

__all__ = [
    "Implication",
    "control_implications",
    "requirements_from_tests",
    "requirements_from_netlist",
    "infeasible_requirements",
    "word_satisfies",
]


@dataclass(frozen=True)
class Implication:
    """``antecedent`` forces ``consequent`` in every reachable word.

    Both sides are (signal, value) pairs.  Implications constrain what
    sequential ATPG can justify on the data path's control nets.
    """

    antecedent: tuple[str, object]
    consequent: tuple[str, object]

    def __str__(self) -> str:
        a, av = self.antecedent
        c, cv = self.consequent
        return f"({a}={av}) => ({c}={cv})"


def control_implications(
    controller: Controller, signals: Sequence[str] | None = None
) -> list[Implication]:
    """All pairwise implications holding across the control words.

    For every (signal, value) that occurs in some word, if a second
    signal takes the same value in *every* word where the first holds,
    that is an implication the composite imposes on ATPG.  Trivial
    self-implications are omitted.
    """
    if signals is None:
        signals = controller.signal_names()
    words = [w.signals for w in controller.words]
    domain: dict[str, set] = {}
    for w in words:
        for s in signals:
            domain.setdefault(s, set()).add(w.get(s, 0))

    out: list[Implication] = []
    for a in signals:
        for av in sorted(domain[a], key=repr):
            holding = [w for w in words if w.get(a, 0) == av]
            if not holding or len(holding) == len(words):
                continue
            for c in signals:
                if c == a:
                    continue
                values = {w.get(c, 0) for w in holding}
                if len(values) == 1:
                    cv = values.pop()
                    if len(domain[c]) > 1:
                        out.append(Implication((a, av), (c, cv)))
    return out


def word_satisfies(word: Mapping[str, object], req: Mapping[str, object]) -> bool:
    return all(word.get(s, 0) == v for s, v in req.items())


def requirements_from_tests(
    control_map: Mapping[str, object],
    tests: Sequence[Mapping[str, int]],
) -> list[dict[str, object]]:
    """Derive [14]-style control requirements from real ATPG tests.

    ``control_map`` is the structure returned by
    :func:`repro.gatelevel.expand.expand_datapath`; ``tests`` are
    vectors over that netlist's inputs (e.g. from
    :func:`repro.gatelevel.test_generation.generate_tests`).  Each
    test's assignments to control nets are translated back into the
    symbolic control-word language (``R3.load = 1``,
    ``alu0.sel0 = 'R2'``, ``alu0.fn = '+'``), giving the per-cycle
    requirement the controller must be able to produce for that test
    to be applicable in the composite.
    """
    out: list[dict[str, object]] = []
    for test in tests:
        req: dict[str, object] = {}
        for reg, load_net in control_map["reg_load"].items():
            if load_net in test:
                req[f"{reg}.load"] = test[load_net]
        for reg, (sels, sources) in control_map["reg_sel"].items():
            idx = _decode_index(test, sels)
            if idx is not None and idx < len(sources):
                req[f"{reg}.sel"] = sorted(sources)[idx]
        for (unit, port), (sels, sources) in control_map["port_sel"].items():
            idx = _decode_index(test, sels)
            if idx is not None and idx < len(sources):
                req[f"{unit}.sel{port}"] = sorted(sources)[idx]
        for unit, (fns, kinds) in control_map["fn_sel"].items():
            idx = _decode_index(test, fns)
            if idx is not None and idx < len(kinds):
                req[f"{unit}.fn"] = kinds[idx]
        if req:
            out.append(req)
    return out


def requirements_from_netlist(
    netlist,
    control_map: Mapping[str, object],
    faults=None,
    backtrack_limit: int = 300,
    atpg_backend: str | None = None,
    shards: int | None = None,
) -> list[dict[str, object]]:
    """Run the ATPG driver and translate its tests into requirements.

    The implication analysis needs the *minimal* control assignment
    each test requires, so the random-pattern pre-drop stage is
    disabled here: pre-drop vectors specify every control net and
    would over-constrain the derived requirements.  The PODEM engine
    (``atpg_backend``) and residue sharding (``shards``) are free
    accelerations -- the partial vectors are identical for every
    combination.
    """
    from repro.gatelevel.test_generation import generate_tests

    ts = generate_tests(
        netlist, faults=faults, backtrack_limit=backtrack_limit,
        atpg_backend=atpg_backend, shards=shards, predrop=0,
    )
    return requirements_from_tests(control_map, ts.partial_vectors)


def _decode_index(
    test: Mapping[str, int], select_nets: Sequence[str]
) -> int | None:
    """Binary index from individual select-bit assignments (None when
    any bit is unassigned -- the test leaves it free)."""
    if not select_nets:
        return None
    idx = 0
    for k, net in enumerate(select_nets):
        if net not in test:
            return None
        idx |= (test[net] & 1) << k
    return idx


def infeasible_requirements(
    controller: Controller,
    requirements: Sequence[Mapping[str, object]],
) -> list[Mapping[str, object]]:
    """The control-word requirements no reachable word satisfies.

    Each requirement is a partial control assignment a data-path test
    needs in some cycle.  Requirements unmet by every word are the ATPG
    conflicts [14] eliminates with extra vectors.
    """
    words = [w.signals for w in controller.words]
    return [
        req
        for req in requirements
        if not any(word_satisfies(w, req) for w in words)
    ]
