"""Controller redesign with extra test control vectors ([14]).

"The technique involves adding a few extra control vectors to the
existing control vectors which are outputs of the controller."  The
extra vectors are selectable in test mode (``tm_en``/``tm_sel`` inputs
of :func:`repro.gatelevel.expand.expand_composite`) and satisfy the
control requirements the functional words cannot.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.controller_dft.implications import (
    infeasible_requirements,
    word_satisfies,
)
from repro.hls.controller import Controller


def vectors_for_requirements(
    controller: Controller,
    requirements: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    """Minimal-ish extra vectors covering the infeasible requirements.

    Greedy set cover: requirements that do not contradict each other
    (no signal demanded at two values) are merged into one vector.
    Signals a vector leaves free take the values of the controller's
    first word (arbitrary but deterministic).
    """
    missing = infeasible_requirements(controller, requirements)
    vectors: list[dict[str, object]] = []
    for req in missing:
        for vec in vectors:
            if all(vec.get(s, v) == v for s, v in req.items()):
                vec.update(req)
                break
        else:
            vectors.append(dict(req))
    return vectors


def redesign_with_test_vectors(
    controller: Controller,
    requirements: Sequence[Mapping[str, object]],
) -> tuple[list[dict[str, object]], int]:
    """The [14] flow: analyze, synthesize extra vectors, report cost.

    Returns (extra vectors, area cost in gate equivalents).  A vector's
    cost is one decode row plus ``AREA_MODEL['control_vector']`` per
    signal it asserts to a *non-default* value -- signals at their
    default ride the existing decode for free, which is how [14]'s
    extra vectors stay at "marginal area overhead".
    """
    from repro.hls.estimate import AREA_MODEL

    vectors = vectors_for_requirements(controller, requirements)
    defaults = _signal_defaults(controller)
    unit = AREA_MODEL["control_vector"]
    cost = 0.0
    for vec in vectors:
        asserted = sum(
            1 for s, v in vec.items() if v != defaults.get(s, 0)
        )
        cost += unit * (1 + asserted)
    return vectors, int(cost)


def _signal_defaults(controller: Controller) -> dict[str, object]:
    """Most common value per control signal across the words."""
    counts: dict[str, dict] = {}
    for w in controller.words:
        for s in controller.signal_names():
            v = w.value(s)
            counts.setdefault(s, {}).setdefault(v, 0)
            counts[s][v] += 1
    return {
        s: max(vals, key=lambda v: (vals[v], repr(v)))
        for s, vals in counts.items()
    }


def coverage_of_requirements(
    controller: Controller,
    requirements: Sequence[Mapping[str, object]],
    extra: Sequence[Mapping[str, object]] = (),
) -> float:
    """Fraction of requirements some (functional or extra) word meets."""
    words = [w.signals for w in controller.words] + list(extra)
    if not requirements:
        return 1.0
    met = sum(
        1
        for req in requirements
        if any(word_satisfies(w, req) for w in words)
    )
    return met / len(requirements)
