"""Controller-based design for testability (survey section 3.5), after
[14] (Dey/Gangaram/Potkonjak, ICCAD'95).

Even when the controller and data path are individually testable, the
composite can defeat sequential ATPG: the controller only ever emits
its programmed control words, so control-signal value combinations the
data-path tests need may be unreachable -- *control signal
implications* that conflict with ATPG requirements.  The fix is to add
a few extra control vectors, selectable in test mode, that break the
identified implications.

* :mod:`~repro.controller_dft.implications` -- implication analysis.
* :mod:`~repro.controller_dft.redesign` -- extra-vector synthesis.
"""

from repro.controller_dft.implications import (
    Implication,
    control_implications,
    infeasible_requirements,
    requirements_from_netlist,
    requirements_from_tests,
)
from repro.controller_dft.redesign import (
    redesign_with_test_vectors,
    vectors_for_requirements,
)

__all__ = [
    "Implication",
    "control_implications",
    "infeasible_requirements",
    "requirements_from_netlist",
    "requirements_from_tests",
    "redesign_with_test_vectors",
    "vectors_for_requirements",
]
