"""``dmachine`` -- a hand-built small CPU benchmark design.

The survey's cost models are only credible on processor-shaped logic,
not just :mod:`repro.gatelevel.genscale`'s random clouds.  This module
constructs a complete 16-bit accumulator-register machine as a flat
gate-level :class:`~repro.gatelevel.gates.Netlist`:

* **Instruction decode** -- a 16-bit instruction word on primary
  inputs (``op``/``rd``/``ra``/``rb`` nibbles) driving a one-hot
  opcode decoder.
* **Register file** -- ``nregs`` x ``width`` scan-ready DFFs with a
  one-hot write decoder and two full mux-tree read ports.
* **ALU** -- shared ripple add/sub, bitwise AND/OR/XOR buses, log-stage
  left/right barrel shifters, and a lower-half array multiplier (the
  multiplier is the classic random-pattern-resistant structure the
  testability literature cares about).
* **Memory** -- a ``ram_words`` x ``width`` embedded RAM bank
  (decoder, write muxes, full read mux trees) addressed from the
  ``rb`` register or the stack pointer.
* **Control state** -- PC with increment/branch (``JZ``/``JMP``), SP
  with push/pop, and Z/N/C flags.

Instruction set (op nibble): ADD SUB AND OR XOR SHL SHR MUL LD ST
PUSH POP JZ JMP LDI NOP.

``scan`` selects the DFL discipline: ``"full"`` (every DFF
scannable), ``"core"`` (everything but the RAM bank -- the classic
scan-selection trade), or ``"none"`` (BIST-oriented).
``signature_bits > 0`` adds a genscale-shaped ``bist_en``-gated MISR
(``sr0``) so :func:`repro.gatelevel.genscale.bist_wrap` accepts the
result.

At the defaults the machine is ~7.4k combinational gates over ~2.3k
flip-flops -- past the >=5k-gate bar the ROADMAP sets for a real-CPU
benchmark -- and every flow in the repo (scan selection, ATPG, random
patterns, BIST sessions) runs on it unmodified.
"""

from __future__ import annotations

from repro.gatelevel.gates import Netlist, NetlistError

#: op nibble -> mnemonic, in encoding order.
OPCODES = (
    "ADD", "SUB", "AND", "OR", "XOR", "SHL", "SHR", "MUL",
    "LD", "ST", "PUSH", "POP", "JZ", "JMP", "LDI", "NOP",
)

SCAN_MODES = ("full", "core", "none")


def _log2(n: int) -> int:
    bits = n.bit_length() - 1
    if n <= 0 or (1 << bits) != n:
        raise NetlistError(f"expected a power of two, got {n}")
    return bits


class _Builder:
    """Netlist construction helpers (fresh-name allocation + word ops)."""

    def __init__(self, nl: Netlist) -> None:
        self.nl = nl
        self._n = 0

    def g(self, kind: str, *ins: str, name: str | None = None) -> str:
        if name is None:
            self._n += 1
            name = f"w{self._n}"
        return self.nl.add(name, kind, *ins)

    def decoder(self, prefix: str, bits: list[str]) -> list[str]:
        """One-hot decode of ``bits`` (LSB first): 2**n AND trees."""
        inv = [self.g("not", b, name=f"{prefix}_n{i}")
               for i, b in enumerate(bits)]
        lines = []
        for v in range(1 << len(bits)):
            lits = [bits[i] if (v >> i) & 1 else inv[i]
                    for i in range(len(bits))]
            acc = lits[0]
            for lit in lits[1:]:
                acc = self.g("and", acc, lit)
            lines.append(self.g("buf", acc, name=f"{prefix}_{v}"))
        return lines

    def ripple_add(self, prefix: str, a: list[str], b: list[str],
                   cin: str) -> tuple[list[str], str]:
        """Ripple-carry sum of two words; returns (sum bits, carry out)."""
        s, c = [], cin
        for i, (ai, bi) in enumerate(zip(a, b)):
            x = self.g("xor", ai, bi)
            s.append(self.g("xor", x, c, name=f"{prefix}_s{i}"))
            c = self.g("or", self.g("and", ai, bi), self.g("and", x, c))
        return s, c

    def increment(self, prefix: str, a: list[str], one: str
                  ) -> list[str]:
        """a + 1 via a half-adder chain."""
        s, c = [], one
        for i, ai in enumerate(a):
            s.append(self.g("xor", ai, c, name=f"{prefix}_s{i}"))
            c = self.g("and", ai, c)
        return s

    def decrement(self, prefix: str, a: list[str], one: str
                  ) -> list[str]:
        """a - 1: half-subtractor chain (borrow ripples on zeros)."""
        s, brw = [], one
        for i, ai in enumerate(a):
            s.append(self.g("xor", ai, brw, name=f"{prefix}_s{i}"))
            brw = self.g("and", self.g("not", ai), brw)
        return s

    def mux_word(self, sel: str, a: list[str], b: list[str],
                 prefix: str | None = None) -> list[str]:
        """Per-bit ``sel ? a : b``."""
        return [
            self.g("mux", sel, ai, bi,
                   name=f"{prefix}_b{i}" if prefix else None)
            for i, (ai, bi) in enumerate(zip(a, b))
        ]

    def mux_tree(self, sel: list[str], words: list[list[str]],
                 prefix: str) -> list[str]:
        """Full mux tree: ``words[v]`` selected by ``sel`` (LSB first)."""
        layer = words
        for stage, s in enumerate(sel):
            nxt = []
            for j in range(0, len(layer), 2):
                hi = layer[j + 1] if j + 1 < len(layer) else layer[j]
                last = stage == len(sel) - 1
                nxt.append(self.mux_word(
                    s, hi, layer[j],
                    prefix=prefix if last and len(layer) == 2 else None,
                ))
            layer = nxt
        return layer[0]


def build_dmachine(
    width: int = 16,
    nregs: int = 16,
    ram_words: int = 128,
    scan: str = "full",
    signature_bits: int = 0,
    name: str | None = None,
) -> Netlist:
    """Construct the d_machine CPU netlist (see module docstring).

    ``width``/``nregs``/``ram_words`` must be powers of two (mux trees
    and decoders are built full).  ``scan`` is one of
    :data:`SCAN_MODES`.
    """
    if scan not in SCAN_MODES:
        raise NetlistError(
            f"scan must be one of {SCAN_MODES}, got {scan!r}"
        )
    abits = _log2(ram_words)
    rbits = _log2(nregs)
    _log2(width)
    if rbits > 4 or abits > width:
        raise NetlistError("register/address field exceeds instruction")

    nl = Netlist(name or f"dmachine_w{width}_r{nregs}_m{ram_words}")
    bd = _Builder(nl)
    scan_core = scan == "full" or scan == "core"
    scan_ram = scan == "full"

    # --- primary inputs: instruction word + reset -------------------
    nl.add("reset", "input")
    op = [nl.add(f"op{i}", "input") for i in range(4)]
    rd = [nl.add(f"rd{i}", "input") for i in range(4)]
    ra = [nl.add(f"ra{i}", "input") for i in range(4)]
    rb = [nl.add(f"rb{i}", "input") for i in range(4)]
    zero = nl.add("zero", "const0")
    one = nl.add("onec", "const1")
    run = bd.g("not", "reset", name="run")

    # --- forward-declared state nets --------------------------------
    regs = [[f"reg{r}_b{i}" for i in range(width)] for r in range(nregs)]
    pc = [f"pc_b{i}" for i in range(width)]
    sp = [f"sp_b{i}" for i in range(width)]
    ram = [[f"ram{a}_b{i}" for i in range(width)]
           for a in range(ram_words)]
    flag_z, flag_n, flag_c = "flag_z", "flag_n", "flag_c"

    # --- instruction decode -----------------------------------------
    dec = bd.decoder("dec", op)
    d = dict(zip(OPCODES, dec))

    # --- register file read ports -----------------------------------
    a_val = bd.mux_tree(ra[:rbits], regs, "aval")
    b_val = bd.mux_tree(rb[:rbits], regs, "bval")

    # --- ALU ---------------------------------------------------------
    is_sub = bd.g("buf", d["SUB"], name="is_sub")
    b_add = [bd.g("xor", bi, is_sub) for bi in b_val]
    add_s, add_c = bd.ripple_add("add", a_val, b_add, is_sub)
    and_s = [bd.g("and", a, b) for a, b in zip(a_val, b_val)]
    or_s = [bd.g("or", a, b) for a, b in zip(a_val, b_val)]
    xor_s = [bd.g("xor", a, b) for a, b in zip(a_val, b_val)]

    # barrel shifters, log stages, amount = low bits of b_val
    sh_bits = _log2(width)
    shl = list(a_val)
    for s in range(sh_bits):
        k = 1 << s
        shifted = [zero] * k + shl[:-k]
        shl = bd.mux_word(b_val[s], shifted, shl)
    shr = list(a_val)
    for s in range(sh_bits):
        k = 1 << s
        shifted = shr[k:] + [zero] * k
        shr = bd.mux_word(b_val[s], shifted, shr)

    # lower-half array multiplier: rows of partial products, rippled.
    acc = [bd.g("and", a_val[i], b_val[0]) for i in range(width)]
    for j in range(1, width):
        pp = [bd.g("and", a_val[i], b_val[j])
              for i in range(width - j)]
        upper, _c = bd.ripple_add(f"mul{j}", acc[j:], pp, zero)
        acc = acc[:j] + upper
    mul_s = acc

    # result select: mux chain keyed on the one-hot decode lines
    res = list(and_s)
    for sel, word in (
        (d["OR"], or_s), (d["XOR"], xor_s), (d["SHL"], shl),
        (d["SHR"], shr), (d["MUL"], mul_s),
    ):
        res = bd.mux_word(sel, word, res)
    is_addsub = bd.g("or", d["ADD"], d["SUB"], name="is_addsub")
    alu = bd.mux_word(is_addsub, add_s, res, prefix="alu")

    # --- RAM bank ----------------------------------------------------
    is_stack = bd.g("or", d["PUSH"], d["POP"], name="is_stack")
    addr = bd.mux_word(is_stack, sp[:abits], b_val[:abits],
                       prefix="addr")
    adec = bd.decoder("adec", addr)
    ram_we = bd.g(
        "and", run,
        bd.g("or", d["ST"], d["PUSH"]), name="ram_we",
    )
    wdata = bd.mux_tree(rd[:rbits], regs, "wdata")  # store port
    for a in range(ram_words):
        wr = bd.g("and", adec[a], ram_we, name=f"ram_wr{a}")
        for i in range(width):
            nl.add(f"ramd{a}_b{i}", "mux", wr, wdata[i], ram[a][i])
            nl.add(ram[a][i], "dff", f"ramd{a}_b{i}", scan=scan_ram)
    rdata = bd.mux_tree(addr, ram, "rdata")

    # --- writeback ---------------------------------------------------
    imm = list(ra) + list(rb) + [zero] * (width - 8)  # LDI imm8
    is_load = bd.g("or", d["LD"], d["POP"], name="is_load")
    wb = bd.mux_word(d["LDI"], imm, alu)
    wb = bd.mux_word(is_load, rdata, wb, prefix="wb")

    # --- register file write ----------------------------------------
    wdec = bd.decoder("wdec", rd[:rbits])
    alu_ops = d["ADD"]
    for m in ("SUB", "AND", "OR", "XOR", "SHL", "SHR", "MUL"):
        alu_ops = bd.g("or", alu_ops, d[m])
    alu_ops = bd.g("buf", alu_ops, name="is_alu")
    reg_we = bd.g(
        "and", run,
        bd.g("or", alu_ops, bd.g("or", is_load, d["LDI"])),
        name="reg_we",
    )
    for r in range(nregs):
        wr = bd.g("and", wdec[r], reg_we, name=f"reg_wr{r}")
        for i in range(width):
            nl.add(f"regd{r}_b{i}", "mux", wr, wb[i], regs[r][i])
            nl.add(regs[r][i], "dff", f"regd{r}_b{i}", scan=scan_core)

    # --- flags -------------------------------------------------------
    nz = alu[0]
    for bit in alu[1:]:
        nz = bd.g("or", nz, bit)
    z_new = bd.g("not", nz, name="z_new")
    fl_en = bd.g("and", run, alu_ops, name="fl_en")
    for fl, new in ((flag_z, z_new), (flag_n, alu[-1]),
                    (flag_c, add_c)):
        nl.add(f"{fl}_d", "mux", fl_en, new, fl)
        nl.add(fl, "dff", f"{fl}_d", scan=scan_core)

    # --- PC ----------------------------------------------------------
    pc_inc = bd.increment("pcinc", pc, one)
    take = bd.g(
        "or", bd.g("and", d["JZ"], flag_z), d["JMP"], name="take",
    )
    pc_next = bd.mux_word(take, a_val, pc_inc)
    for i in range(width):
        nl.add(f"pcd_b{i}", "and", run, pc_next[i])
        nl.add(pc[i], "dff", f"pcd_b{i}", scan=scan_core)

    # --- SP ----------------------------------------------------------
    sp_inc = bd.increment("spinc", sp, one)
    sp_dec = bd.decrement("spdec", sp, one)
    sp_next = bd.mux_word(d["POP"], sp_inc, sp)
    sp_next = bd.mux_word(d["PUSH"], sp_dec, sp_next)
    for i in range(width):
        nl.add(f"spd_b{i}", "and", run, sp_next[i])
        nl.add(sp[i], "dff", f"spd_b{i}", scan=scan_core)

    # --- optional MISR (genscale-shaped, bist_wrap-compatible) ------
    if signature_bits:
        nl.add("bist_en", "input")
        taps = (wb + alu + rdata + pc + sp + [flag_z, flag_n, flag_c])
        for i in range(signature_bits):
            tap = taps[i % len(taps)]
            gated = nl.add(f"sr0_t{i}", "and", "bist_en", tap)
            prev = f"sr0_b{(i - 1) % signature_bits}"
            nl.add(f"sr0_x{i}", "xor", prev, gated)
        for i in range(signature_bits):
            nl.add(f"sr0_b{i}", "dff", f"sr0_x{i}", scan=False)

    # --- observation -------------------------------------------------
    for net in wb:
        nl.add_output(net)
    for net in pc:
        nl.add_output(net)
    for fl in (flag_z, flag_n, flag_c):
        nl.add_output(fl)
    _fold_dangling(nl)
    nl.validate()
    return nl


def _fold_dangling(nl: Netlist) -> None:
    """XOR-fold unconsumed non-output nets into observation trees.

    Mirrors genscale's mop-up: anything the datapath computes but no
    downstream gate or output observes (e.g. the top half of shifter
    stages) becomes part of an ``obs*`` XOR tree, so the full stuck-at
    universe stays observable.
    """
    consumed: set[str] = set()
    for g in nl:
        consumed.update(g.inputs)
    consumed.update(nl.outputs)
    dangling = [
        g.name for g in nl
        if g.name not in consumed and g.kind != "input"
    ]
    if not dangling:
        return
    k = 0
    while dangling:
        chunk, dangling = dangling[:32], dangling[32:]
        acc = chunk[0]
        for net in chunk[1:]:
            acc = nl.add(f"obs{k}_{net}", "xor", acc, net)
        root = nl.add(f"obs{k}", "buf", acc)
        nl.add_output(root)
        k += 1


def dmachine_bist(
    width: int = 16,
    nregs: int = 16,
    ram_words: int = 128,
    signature_bits: int = 32,
):
    """The BIST-wrapped d_machine: no scan, MISR observation only."""
    from repro.gatelevel import genscale

    nl = build_dmachine(
        width=width, nregs=nregs, ram_words=ram_words, scan="none",
        signature_bits=signature_bits,
        name=f"dmachine_bist_w{width}_r{nregs}_m{ram_words}",
    )
    return genscale.bist_wrap(nl)
