"""First-class benchmark designs.

:mod:`repro.gatelevel.genscale` grows *random* netlists; this package
holds *architected* ones -- hand-built designs with real structure
(datapaths, decoders, embedded memories) that the flows and benchmarks
reference by name.  :func:`resolve_design` turns a compact spec string
into a netlist:

* ``"dmachine"`` -- the default 16-bit CPU (full scan)
* ``"dmachine:<width>:<nregs>:<ram_words>[:scan]"`` -- parameterised,
  e.g. ``dmachine:16:16:64:core``
* ``"gs:<gates>:<seed>"`` -- a genscale random design (so corpus
  sweeps and registered designs share one spec grammar)
"""

from __future__ import annotations

from repro.gatelevel.gates import Netlist, NetlistError

from .dmachine import SCAN_MODES, build_dmachine, dmachine_bist

#: name -> zero-argument builder for the registered benchmark designs.
DESIGNS = {
    "dmachine": lambda: build_dmachine(),
}

__all__ = [
    "DESIGNS", "SCAN_MODES", "build_dmachine", "dmachine_bist",
    "resolve_design",
]


def resolve_design(spec: str) -> Netlist:
    """The netlist for a design spec string (see module docstring)."""
    if not isinstance(spec, str) or not spec:
        raise NetlistError(f"bad design spec {spec!r}")
    head, *rest = spec.split(":")
    if head in DESIGNS and not rest:
        return DESIGNS[head]()
    try:
        if head == "dmachine":
            scan = "full"
            if rest and rest[-1] in SCAN_MODES:
                scan = rest.pop()
            width, nregs, ram_words = (int(x) for x in rest)
            return build_dmachine(width=width, nregs=nregs,
                                  ram_words=ram_words, scan=scan)
        if head == "gs":
            from repro.gatelevel import genscale

            gates, seed = (int(x) for x in rest)
            return genscale.generate_netlist(gates, seed=seed)
    except (ValueError, TypeError) as exc:
        raise NetlistError(f"bad design spec {spec!r}: {exc}") from None
    raise NetlistError(f"unknown design spec {spec!r}")
