"""Controller generation.

Builds the microcoded FSM that sequences a data path: one control word
per control step, carrying the multiplexer selects, register load
enables, and unit function codes.  Section 3.5 of the survey discusses
why this controller matters for testability: implications *between*
control signals constrain what sequential ATPG can justify in the data
path.  The conflict analysis and redesign live in
:mod:`repro.controller_dft`; this module only constructs the machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.hls.datapath import Datapath


@dataclass(frozen=True)
class ControlWord:
    """The values asserted during one control step.

    ``signals`` maps signal names to symbolic values:

    * ``"<unit>.sel<k>"``  -> source register name for input port k
    * ``"<unit>.fn"``      -> operation kind executed
    * ``"<reg>.load"``     -> 1 when the register captures this step
    * ``"<reg>.sel"``      -> source unit (or ``"PI:<var>"``) captured
    """

    step: int
    signals: Mapping[str, object]

    def value(self, signal: str, default=0):
        return self.signals.get(signal, default)


class Controller:
    """A microcode controller: one :class:`ControlWord` per step."""

    def __init__(self, datapath: Datapath, words: list[ControlWord]) -> None:
        self.datapath = datapath
        self.words = words

    @property
    def num_steps(self) -> int:
        return len(self.words)

    def signal_names(self) -> list[str]:
        names: set[str] = set()
        for w in self.words:
            names.update(w.signals)
        return sorted(names)

    def column(self, signal: str) -> list[object]:
        """The per-step value sequence of one control signal."""
        return [w.value(signal) for w in self.words]

    def load_steps(self, register: str) -> list[int]:
        """Steps at which ``register`` is loaded."""
        return [
            w.step for w in self.words if w.value(f"{register}.load") == 1
        ]

    def __repr__(self) -> str:
        return (
            f"Controller({self.datapath.name!r}, steps={self.num_steps}, "
            f"signals={len(self.signal_names())})"
        )


def build_controller(datapath: Datapath) -> Controller:
    """Derive the control words from the data path's transfers."""
    n_steps = datapath.schedule.length_with_delays(datapath.cdfg)
    per_step: list[dict[str, object]] = [dict() for _ in range(n_steps + 1)]
    for t in datapath.transfers:
        op = datapath.cdfg.operation(t.operation)
        # Multicycle units are combinational in the expansion, so their
        # function and input selects must be held through every cycle
        # of the operation, not only the start cycle.
        for step in range(t.step, t.finish_step + 1):
            word = per_step[step]
            word[f"{t.unit}.fn"] = op.kind
            for i, src in enumerate(t.source_registers):
                word[f"{t.unit}.sel{i}"] = src
        finish = per_step[t.finish_step]
        finish[f"{t.dest_register}.load"] = 1
        finish[f"{t.dest_register}.sel"] = t.unit
    # Primary-input loads happen in a step-0 prologue word.
    prologue: dict[str, object] = {}
    for var in datapath.cdfg.primary_inputs():
        reg = datapath.register_of_variable(var.name)
        prologue[f"{reg.name}.load"] = 1
        prologue[f"{reg.name}.sel"] = f"PI:{var.name}"
    words = [ControlWord(0, prologue)]
    words += [
        ControlWord(step, per_step[step]) for step in range(1, n_steps + 1)
    ]
    return Controller(datapath, words)
