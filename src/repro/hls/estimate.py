"""Area and overhead estimation.

A gate-equivalent area model in the spirit of the estimators the
surveyed papers use to report "modest area overhead".  Absolute numbers
are arbitrary units; only ratios (overhead percentages, technique A vs
technique B) are meaningful, which is all the reproduction needs.
"""

from __future__ import annotations

from typing import Mapping

from repro.hls.datapath import Datapath

#: Gate-equivalents per structural element.  ``*_bit`` entries scale
#: with register/unit width; ``mult_bit2`` scales with width squared.
AREA_MODEL: Mapping[str, float] = {
    "register_bit": 6.0,       # plain D flip-flop + clocking
    "scan_bit": 8.0,           # mux-D scan flip-flop
    "transparent_scan_bit": 7.0,
    "tpgr_bit": 10.0,          # LFSR stage (XOR feedback + mux)
    "sr_bit": 10.0,            # MISR stage
    "bilbo_bit": 12.0,         # combined TPGR/SR modes
    "cbilbo_bit": 22.0,        # concurrent BILBO: two register ranks
    "mux2_bit": 3.0,           # one 2:1 mux leg
    "alu_bit": 12.0,           # adder/subtractor/logic slice
    "mult_bit2": 4.0,          # array multiplier cell (width^2 term)
    "cmp_bit": 4.0,
    "test_point_bit": 5.0,     # register-file/constant test point [15]
    "control_vector": 6.0,     # one extra controller output vector [14]
}

#: Register area keyed by the ``test_role`` annotation.
_ROLE_KEY = {
    None: "register_bit",
    "TPGR": "tpgr_bit",
    "SR": "sr_bit",
    "BILBO": "bilbo_bit",
    "CBILBO": "cbilbo_bit",
}


def register_area(width: int, role: str | None = None,
                  scan: bool = False, transparent: bool = False) -> float:
    """Area of one register given its test configuration."""
    if role is not None:
        key = _ROLE_KEY[role]
    elif transparent:
        key = "transparent_scan_bit"
    elif scan:
        key = "scan_bit"
    else:
        key = "register_bit"
    return AREA_MODEL[key] * width


def unit_area(unit_class: str, width: int) -> float:
    """Area of one functional unit instance."""
    if unit_class.startswith("mult"):
        return AREA_MODEL["mult_bit2"] * width * width
    if unit_class.startswith("cmp"):
        return AREA_MODEL["cmp_bit"] * width
    return AREA_MODEL["alu_bit"] * width


def area_estimate(datapath: Datapath) -> dict[str, float]:
    """Break down the data-path area into registers, units, and muxes.

    Honors the testability annotations on registers, so calling this
    before and after a DFT pass yields the pass's area overhead.
    """
    reg_area = sum(
        register_area(
            r.width, role=r.test_role, scan=r.scan,
            transparent=r.transparent_scan,
        )
        for r in datapath.registers
    )
    fu_area = sum(unit_area(u.unit_class, u.width) for u in datapath.units)
    width = max((r.width for r in datapath.registers), default=8)
    mux_area = AREA_MODEL["mux2_bit"] * width * datapath.mux_count()
    total = reg_area + fu_area + mux_area
    return {
        "registers": reg_area,
        "units": fu_area,
        "muxes": mux_area,
        "total": total,
    }


def overhead_percent(before: float, after: float) -> float:
    """Relative overhead of ``after`` versus ``before``, in percent."""
    if before <= 0:
        raise ValueError("baseline area must be positive")
    return 100.0 * (after - before) / before
