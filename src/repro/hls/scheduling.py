"""Operation scheduling.

Implements the schedulers used by the surveyed synthesis-for-test
flows:

* :func:`asap` / :func:`alap` -- unconstrained bounds.
* :func:`list_schedule` -- resource-constrained list scheduling with a
  mobility-based priority (the conventional baseline scheduler).
* :func:`force_directed_schedule` -- latency-constrained force-directed
  scheduling (Paulin & Knight), the scheduler most of the cited papers
  build on.
* :func:`mobility_path_schedule` -- the testability-oriented scheduler
  of [26] (Lee/Wolf/Jha ICCAD'92): places operations within their
  mobility window so that intermediate-variable lifetimes avoid
  overlapping I/O-variable lifetimes (enabling I/O register sharing)
  and register-to-register sequential depth is reduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import networkx as nx

from repro.cdfg.analysis import (
    alap_schedule,
    asap_schedule,
    critical_path_length,
)
from repro.cdfg.graph import CDFG, CDFGError
from repro.hls.allocation import Allocation, AllocationError


@dataclass(frozen=True)
class Schedule:
    """An assignment of operations to control steps (1-based)."""

    steps: Mapping[str, int]

    @property
    def length(self) -> int:
        return max(self.steps.values()) if self.steps else 0

    def length_with_delays(self, cdfg: CDFG) -> int:
        if not self.steps:
            return 0
        return max(
            self.steps[o] + cdfg.operation(o).delay - 1 for o in self.steps
        )

    def step_of(self, op_name: str) -> int:
        return self.steps[op_name]

    def operations_in_step(self, cdfg: CDFG, step: int) -> list[str]:
        """Operations *active* (occupying a unit) during ``step``."""
        return [
            o
            for o, s in self.steps.items()
            if s <= step <= s + cdfg.operation(o).delay - 1
        ]

    def verify(self, cdfg: CDFG, allocation: Allocation | None = None) -> None:
        """Raise on dependency or resource violations."""
        for op in cdfg:
            if op.name not in self.steps:
                raise CDFGError(f"operation {op.name!r} not scheduled")
            for var in op.sequencing_inputs():
                producer = cdfg.producer_of(var)
                if producer is None:
                    continue
                avail = self.steps[producer.name] + producer.delay
                if self.steps[op.name] < avail:
                    raise CDFGError(
                        f"{op.name!r} at step {self.steps[op.name]} reads "
                        f"{var!r} available at step {avail}"
                    )
        if allocation is None:
            return
        allocation.validate_for(cdfg)
        for step in range(1, self.length_with_delays(cdfg) + 1):
            used: dict[str, int] = {}
            for name in self.operations_in_step(cdfg, step):
                cls = allocation.unit_class(cdfg.operation(name).kind)
                used[cls] = used.get(cls, 0) + 1
            for cls, n in used.items():
                if n > allocation.count(cls):
                    raise AllocationError(
                        f"step {step}: {n} ops of class {cls!r} but only "
                        f"{allocation.count(cls)} units"
                    )


def asap(cdfg: CDFG) -> Schedule:
    """As-soon-as-possible schedule (unlimited resources)."""
    return Schedule(asap_schedule(cdfg))


def alap(cdfg: CDFG, num_steps: int | None = None) -> Schedule:
    """As-late-as-possible schedule under a latency constraint."""
    return Schedule(alap_schedule(cdfg, num_steps))


def list_schedule(
    cdfg: CDFG,
    allocation: Allocation,
    priority: Callable[[str], float] | None = None,
) -> Schedule:
    """Resource-constrained list scheduling.

    Ready operations are started in priority order (default: least
    mobility first, i.e. most critical first) whenever a unit of their
    class is free.  Multi-cycle operations occupy their unit for
    ``delay`` consecutive steps.
    """
    allocation.validate_for(cdfg)
    asap_steps = asap_schedule(cdfg)
    cpl = critical_path_length(cdfg)
    alap_steps = alap_schedule(cdfg, cpl)
    if priority is None:
        mobility = {o: alap_steps[o] - asap_steps[o] for o in asap_steps}

        def priority(op_name: str) -> float:
            return mobility[op_name]

    dag = cdfg.op_graph(include_carried=False)
    remaining_preds = {o: dag.in_degree(o) for o in dag}
    ready = sorted(
        (o for o, d in remaining_preds.items() if d == 0), key=priority
    )
    finish: dict[str, int] = {}
    steps: dict[str, int] = {}
    busy_until: dict[str, list[int]] = {}  # class -> finish step per unit
    step = 1
    scheduled = 0
    # Safety bound: every op needs at most (n_ops * max_delay) steps.
    max_steps = sum(op.delay for op in cdfg) + cpl + 1
    while scheduled < len(cdfg.operations):
        if step > max_steps:
            raise AllocationError("list scheduling failed to converge")
        for op_name in list(ready):
            op = cdfg.operation(op_name)
            # Dependencies must have *finished* before this step.
            if any(
                finish.get(cdfg.producer_of(v).name, 10**9) >= step
                for v in op.sequencing_inputs()
                if cdfg.producer_of(v) is not None
            ):
                continue
            cls = allocation.unit_class(op.kind)
            units = busy_until.setdefault(cls, [0] * allocation.count(cls))
            free = next((i for i, f in enumerate(units) if f < step), None)
            if free is None:
                continue
            units[free] = step + op.delay - 1
            steps[op_name] = step
            finish[op_name] = step + op.delay - 1
            ready.remove(op_name)
            scheduled += 1
            for succ in dag.successors(op_name):
                remaining_preds[succ] -= 1
                if remaining_preds[succ] == 0:
                    ready.append(succ)
            ready.sort(key=priority)
        step += 1
    schedule = Schedule(steps)
    schedule.verify(cdfg, allocation)
    return schedule


def force_directed_schedule(cdfg: CDFG, num_steps: int | None = None) -> Schedule:
    """Latency-constrained force-directed scheduling (Paulin & Knight).

    Minimises the peak of the per-class distribution graphs, which in
    turn minimises the number of units the binder needs.  This is the
    classic O(n^2) formulation with self-force only (no
    predecessor/successor force), which is sufficient for the benchmark
    sizes in this repository.
    """
    if num_steps is None:
        num_steps = critical_path_length(cdfg)
    asap_steps = asap_schedule(cdfg)
    alap_steps = alap_schedule(cdfg, num_steps)
    window = {o: (asap_steps[o], alap_steps[o]) for o in asap_steps}
    fixed: dict[str, int] = {}
    from repro.hls.allocation import DEFAULT_UNIT_CLASSES

    classes = dict(DEFAULT_UNIT_CLASSES)

    def distributions() -> dict[str, list[float]]:
        dist: dict[str, list[float]] = {}
        for o, (lo, hi) in window.items():
            op = cdfg.operation(o)
            cls = classes.get(op.kind, op.kind)
            row = dist.setdefault(cls, [0.0] * (num_steps + 2))
            if o in fixed:
                s = fixed[o]
                for d in range(op.delay):
                    row[min(s + d, num_steps + 1)] += 1.0
            else:
                p = 1.0 / (hi - lo + 1)
                for s in range(lo, hi + 1):
                    for d in range(op.delay):
                        row[min(s + d, num_steps + 1)] += p
        return dist

    unfixed = [o for o, (lo, hi) in window.items() if lo != hi]
    for o, (lo, hi) in window.items():
        if lo == hi:
            fixed[o] = lo
    while unfixed:
        dist = distributions()
        best: tuple[float, str, int] | None = None
        for o in unfixed:
            op = cdfg.operation(o)
            cls = classes.get(op.kind, op.kind)
            lo, hi = window[o]
            p = 1.0 / (hi - lo + 1)
            for s in range(lo, hi + 1):
                force = 0.0
                for d in range(op.delay):
                    t = min(s + d, num_steps + 1)
                    avg = sum(
                        dist[cls][min(s2 + d, num_steps + 1)] * p
                        for s2 in range(lo, hi + 1)
                    )
                    force += dist[cls][t] - avg
                key = (force, o, s)
                if best is None or key < best:
                    best = key
        _, chosen, chosen_step = best
        fixed[chosen] = chosen_step
        unfixed.remove(chosen)
        _tighten_windows(cdfg, window, fixed, num_steps)
    schedule = Schedule(fixed)
    schedule.verify(cdfg)
    return schedule


def _tighten_windows(
    cdfg: CDFG,
    window: dict[str, tuple[int, int]],
    fixed: Mapping[str, int],
    num_steps: int,
) -> None:
    """Propagate fixed placements through the dependence DAG."""
    dag = cdfg.op_graph(include_carried=False)
    changed = True
    while changed:
        changed = False
        for o in window:
            lo, hi = window[o]
            if o in fixed:
                lo = hi = fixed[o]
            op = cdfg.operation(o)
            for pred in dag.predecessors(o):
                p = cdfg.operation(pred)
                plo = (fixed[pred] if pred in fixed else window[pred][0])
                lo = max(lo, plo + p.delay)
            for succ in dag.successors(o):
                shi = (fixed[succ] if succ in fixed else window[succ][1])
                hi = min(hi, shi - op.delay)
            if (lo, hi) != window[o]:
                if lo > hi:
                    raise CDFGError(
                        f"force-directed window collapsed for {o!r}"
                    )
                window[o] = (lo, hi)
                changed = True


def mobility_path_schedule(
    cdfg: CDFG,
    num_steps: int | None = None,
    allocation: Allocation | None = None,
) -> Schedule:
    """The testability-driven scheduler of [26].

    Operations are placed inside their mobility window so that the
    lifetime of each *intermediate* variable overlaps as few *I/O*
    variable lifetimes as possible (maximising the chance the register
    assigner can fold intermediates into I/O registers, section 3.2)
    and so that produced values are consumed as soon as possible
    (minimising register-to-register sequential depth).
    """
    if num_steps is None:
        num_steps = critical_path_length(cdfg)
    asap_steps = asap_schedule(cdfg)
    alap_steps = alap_schedule(cdfg, num_steps)
    dag = cdfg.op_graph(include_carried=False)

    io_vars = {
        v.name for v in cdfg.variables.values() if v.is_input or v.is_output
    }
    placed: dict[str, int] = {}
    busy: dict[str, dict[int, int]] = {}  # class -> step -> used count

    for o in nx.topological_sort(dag):
        op = cdfg.operation(o)
        lo = asap_steps[o]
        for pred in dag.predecessors(o):
            if pred in placed:
                lo = max(lo, placed[pred] + cdfg.operation(pred).delay)
        hi = max(lo, alap_steps[o])
        best: tuple[float, int] | None = None
        for s in range(lo, hi + 1):
            if allocation is not None and not _unit_free(
                cdfg, allocation, busy, op, s
            ):
                continue
            # Late placement shortens the producer-side lifetime of the
            # output; but consuming inputs early shortens input
            # lifetimes.  [26] balances both: prefer the step that
            # minimises (distance from inputs' births) + (slack left to
            # consumers), approximated here by s - lo plus the number of
            # I/O-busy steps the output's lifetime will newly span.
            birth = s + op.delay
            out_is_io = op.output in io_vars
            overlap_penalty = 0 if out_is_io else max(0, num_steps - birth + 1)
            cost = (s - lo) + 0.25 * overlap_penalty
            if best is None or (cost, s) < best:
                best = (cost, s)
        if best is None:
            raise AllocationError(
                f"mobility-path scheduling: no feasible step for {o!r}"
            )
        s = best[1]
        placed[o] = s
        if allocation is not None:
            _occupy(cdfg, allocation, busy, op, s)
    schedule = Schedule(placed)
    schedule.verify(cdfg, allocation)
    return schedule


def _unit_free(cdfg, allocation, busy, op, step) -> bool:
    cls = allocation.unit_class(op.kind)
    row = busy.setdefault(cls, {})
    return all(
        row.get(step + d, 0) < allocation.count(cls) for d in range(op.delay)
    )


def _occupy(cdfg, allocation, busy, op, step) -> None:
    cls = allocation.unit_class(op.kind)
    row = busy.setdefault(cls, {})
    for d in range(op.delay):
        row[step + d] = row.get(step + d, 0) + 1
