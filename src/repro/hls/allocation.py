"""Resource allocation: deciding the type and number of hardware units.

Allocation "decides the type and number of hardware resources that will
be used to implement the behavioral description" (survey, section 1.1).
ALU-style sharing across compatible kinds is supported through
*unit classes*: by default adders and subtractors share one ALU class
while multipliers get their own, matching the module libraries of the
surveyed papers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.cdfg.graph import CDFG
from repro.cdfg.analysis import critical_path_length

#: Default grouping of operation kinds onto shareable unit classes.
DEFAULT_UNIT_CLASSES: Mapping[str, str] = {
    "+": "alu",
    "-": "alu",
    "&": "alu",
    "|": "alu",
    "^": "alu",
    "<": "alu",
    ">": "alu",
    "==": "alu",
    "<<": "alu",
    ">>": "alu",
    "*": "mult",
    "select": "mux",
}


class AllocationError(ValueError):
    """Raised when an allocation cannot support a behavior."""


@dataclass(frozen=True)
class Allocation:
    """Number of functional units available per unit class.

    ``units`` maps a unit class name (``"alu"``, ``"mult"``) to a count.
    ``classes`` maps operation kinds to unit classes; kinds absent from
    the map each get a dedicated class named after the kind.
    """

    units: Mapping[str, int]
    classes: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_UNIT_CLASSES)
    )

    def unit_class(self, kind: str) -> str:
        return self.classes.get(kind, kind)

    def count(self, unit_class: str) -> int:
        return self.units.get(unit_class, 0)

    def unit_names(self, unit_class: str) -> list[str]:
        """Stable instance names, e.g. ``["alu0", "alu1"]``."""
        return [f"{unit_class}{i}" for i in range(self.count(unit_class))]

    def validate_for(self, cdfg: CDFG) -> None:
        """Raise :class:`AllocationError` if some kind has no unit."""
        for kind in cdfg.kinds():
            if self.count(self.unit_class(kind)) < 1:
                raise AllocationError(
                    f"no unit allocated for operation kind {kind!r} "
                    f"(class {self.unit_class(kind)!r})"
                )


def minimal_allocation(cdfg: CDFG) -> Allocation:
    """One unit per unit class used by ``cdfg`` (minimum-area allocation)."""
    units: dict[str, int] = {}
    classes = dict(DEFAULT_UNIT_CLASSES)
    for kind in cdfg.kinds():
        units[classes.get(kind, kind)] = 1
    return Allocation(units, classes)


def allocate_for_latency(cdfg: CDFG, num_steps: int) -> Allocation:
    """Smallest per-class unit counts that *may* meet ``num_steps``.

    Uses the classic lower bound: for each class, total occupied
    unit-steps divided by the latency, rounded up.  The bound is then
    verified/raised by the list scheduler (which may need one extra unit
    on pathological dependence structures).
    """
    cpl = critical_path_length(cdfg)
    if num_steps < cpl:
        raise AllocationError(
            f"latency {num_steps} below critical path {cpl}"
        )
    classes = dict(DEFAULT_UNIT_CLASSES)
    work: dict[str, int] = {}
    for op in cdfg:
        cls = classes.get(op.kind, op.kind)
        work[cls] = work.get(cls, 0) + op.delay
    units = {
        cls: max(1, math.ceil(total / num_steps)) for cls, total in work.items()
    }
    return Allocation(units, classes)
