"""High-level synthesis core.

Implements the three fundamental behavioral synthesis tasks named in
section 1.1 of the survey -- allocation, scheduling, and assignment
(binding) -- plus data-path construction and controller generation.

Typical flow::

    from repro.cdfg import suite
    from repro import hls

    cdfg = suite.diffeq()
    alloc = hls.Allocation({"*": 2, "+": 1, "-": 1, "<": 1})
    sched = hls.list_schedule(cdfg, alloc)
    fubind = hls.bind_functional_units(cdfg, sched, alloc)
    regs = hls.assign_registers_left_edge(cdfg, sched)
    dp = hls.build_datapath(cdfg, sched, fubind, regs)
    ctrl = hls.build_controller(dp)
"""

from repro.hls.allocation import Allocation, minimal_allocation, allocate_for_latency
from repro.hls.scheduling import (
    Schedule,
    asap,
    alap,
    list_schedule,
    force_directed_schedule,
    mobility_path_schedule,
)
from repro.hls.conflict import conflict_graph, color_conflict_graph
from repro.hls.binding import (
    FUBinding,
    RegisterAssignment,
    bind_functional_units,
    assign_registers_left_edge,
    assign_registers_coloring,
)
from repro.hls.datapath import Datapath, Register, FunctionalUnit, build_datapath
from repro.hls.controller import Controller, build_controller
from repro.hls.estimate import area_estimate, AREA_MODEL
from repro.hls.verify import VerificationResult, verify_datapath

__all__ = [
    "Allocation",
    "minimal_allocation",
    "allocate_for_latency",
    "Schedule",
    "asap",
    "alap",
    "list_schedule",
    "force_directed_schedule",
    "mobility_path_schedule",
    "conflict_graph",
    "color_conflict_graph",
    "FUBinding",
    "RegisterAssignment",
    "bind_functional_units",
    "assign_registers_left_edge",
    "assign_registers_coloring",
    "Datapath",
    "Register",
    "FunctionalUnit",
    "build_datapath",
    "Controller",
    "build_controller",
    "area_estimate",
    "AREA_MODEL",
    "VerificationResult",
    "verify_datapath",
]
