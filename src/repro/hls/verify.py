"""Simulation-based equivalence checking: data path vs behavior.

The sanity check every synthesis flow needs: expand the bound data path
together with its controller to gates, drive random vectors through a
full schedule iteration, and compare the primary outputs against the
CDFG interpreter.  Used by the library's own tests and available to
users whose custom binders might corrupt a transfer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cdfg.interpret import run_iteration
from repro.hls.controller import build_controller
from repro.hls.datapath import Datapath


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of :func:`verify_datapath`."""

    design: str
    vectors: int
    mismatches: list[dict]

    @property
    def equivalent(self) -> bool:
        return not self.mismatches


def verify_datapath(
    datapath: Datapath,
    n_vectors: int = 5,
    seed: int = 0,
) -> VerificationResult:
    """Check the data path computes its behavior (gate-level vs CDFG).

    Builds the composite (controller included), runs ``n_vectors``
    random input assignments through one full schedule each, and
    compares every primary output word against the interpreter.
    """
    from repro.gatelevel.expand import expand_composite
    from repro.gatelevel.simulate import simulate_sequence

    cdfg = datapath.cdfg
    ctrl = build_controller(datapath)
    comp = expand_composite(datapath, ctrl)
    rng = random.Random(seed)
    mismatches: list[dict] = []
    for trial in range(n_vectors):
        values = {
            v.name: rng.randrange(1 << v.width)
            for v in cdfg.primary_inputs()
        }
        piv = {"reset": 0}
        for name, val in values.items():
            width = cdfg.variable(name).width
            for i in range(width):
                piv[f"pi_{name}_b{i}"] = (val >> i) & 1
        seq = [dict(piv, reset=1)] + [piv] * (ctrl.num_steps + 1)
        trace = simulate_sequence(comp, seq, width=1)
        expected = run_iteration(cdfg, values)
        for var in cdfg.primary_outputs():
            reg = datapath.register_of_variable(var.name)
            width = min(var.width, reg.width)
            got = sum(
                trace[-1][f"{reg.name}_b{i}"] << i for i in range(width)
            )
            want = expected[var.name] & ((1 << width) - 1)
            if got != want:
                mismatches.append({
                    "trial": trial,
                    "output": var.name,
                    "got": got,
                    "expected": want,
                    "inputs": values,
                })
    return VerificationResult(datapath.name, n_vectors, mismatches)
