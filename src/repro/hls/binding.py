"""Assignment (binding): operations to functional units, variables to
registers.

"Assignment refers to the binding of each variable/operation to one of
the allocated registers/functional units" (survey, section 1.1).  The
conventional binders here are the baselines every testability-oriented
binder in :mod:`repro.scan` and :mod:`repro.bist` is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.cdfg.graph import CDFG, CDFGError
from repro.cdfg.lifetimes import Lifetime, variable_lifetimes
from repro.hls.allocation import Allocation, AllocationError
from repro.hls.conflict import conflict_graph, color_conflict_graph
from repro.hls.scheduling import Schedule


@dataclass(frozen=True)
class FUBinding:
    """Mapping from operation name to functional-unit instance name."""

    assignment: Mapping[str, str]

    def unit_of(self, op_name: str) -> str:
        return self.assignment[op_name]

    def operations_on(self, unit: str) -> list[str]:
        return sorted(o for o, u in self.assignment.items() if u == unit)

    def units(self) -> list[str]:
        return sorted(set(self.assignment.values()))

    def verify(self, cdfg: CDFG, schedule: Schedule) -> None:
        """No two ops may occupy the same unit in the same step."""
        occupancy: dict[tuple[str, int], str] = {}
        for op in cdfg:
            unit = self.assignment.get(op.name)
            if unit is None:
                raise CDFGError(f"operation {op.name!r} not bound")
            s = schedule.step_of(op.name)
            for d in range(op.delay):
                key = (unit, s + d)
                if key in occupancy:
                    raise AllocationError(
                        f"unit {unit!r} double-booked at step {s + d}: "
                        f"{occupancy[key]!r} and {op.name!r}"
                    )
                occupancy[key] = op.name


@dataclass(frozen=True)
class RegisterAssignment:
    """Mapping from variable name to register index."""

    register_of: Mapping[str, int]

    @property
    def num_registers(self) -> int:
        return 1 + max(self.register_of.values()) if self.register_of else 0

    def variables_in(self, register: int) -> list[str]:
        return sorted(v for v, r in self.register_of.items() if r == register)

    def registers(self) -> list[list[str]]:
        return [self.variables_in(r) for r in range(self.num_registers)]

    def verify(self, lifetimes: Mapping[str, Lifetime]) -> None:
        """No two co-resident variables may have overlapping lifetimes."""
        for reg in range(self.num_registers):
            vs = self.variables_in(reg)
            for i, a in enumerate(vs):
                for b in vs[i + 1:]:
                    if lifetimes[a].overlaps(lifetimes[b]):
                        raise CDFGError(
                            f"register {reg}: variables {a!r} and {b!r} "
                            "overlap in lifetime"
                        )


def bind_functional_units(
    cdfg: CDFG,
    schedule: Schedule,
    allocation: Allocation,
    prefer: Mapping[str, str] | None = None,
) -> FUBinding:
    """Bind each operation to a unit instance of its class.

    Deterministic first-fit in (step, name) order.  ``prefer`` pins
    specific operations to specific unit instances (used by the Figure 1
    reproduction and the testability-aware binder).
    """
    allocation.validate_for(cdfg)
    busy: dict[tuple[str, int], str] = {}  # (unit, step) -> op
    assignment: dict[str, str] = {}

    def try_place(op, unit) -> bool:
        s = schedule.step_of(op.name)
        slots = [(unit, s + d) for d in range(op.delay)]
        if any(slot in busy for slot in slots):
            return False
        for slot in slots:
            busy[slot] = op.name
        assignment[op.name] = unit
        return True

    ordered = sorted(cdfg, key=lambda op: (schedule.step_of(op.name), op.name))
    for op in ordered:
        cls = allocation.unit_class(op.kind)
        candidates = allocation.unit_names(cls)
        if prefer and op.name in prefer:
            candidates = [prefer[op.name]] + [
                u for u in candidates if u != prefer[op.name]
            ]
        if not any(try_place(op, unit) for unit in candidates):
            raise AllocationError(
                f"cannot bind {op.name!r}: all {cls!r} units busy at "
                f"step {schedule.step_of(op.name)}"
            )
    binding = FUBinding(assignment)
    binding.verify(cdfg, schedule)
    return binding


def assign_registers_left_edge(
    cdfg: CDFG,
    schedule: Schedule,
    extra_conflicts: Iterable[tuple[str, str]] = (),
) -> RegisterAssignment:
    """Left-edge register assignment (minimum registers on intervals).

    Variables are sorted by birth time and packed first-fit into
    registers whose current contents they do not overlap.  With
    ``extra_conflicts`` the named pairs are additionally kept apart
    (hook for the testability-driven assigners).
    """
    lifetimes = variable_lifetimes(cdfg, schedule.steps)
    forbidden: dict[str, set[str]] = {}
    for a, b in extra_conflicts:
        forbidden.setdefault(a, set()).add(b)
        forbidden.setdefault(b, set()).add(a)
    order = sorted(lifetimes.values(), key=lambda lt: (lt.birth, lt.variable))
    registers: list[list[Lifetime]] = []
    register_of: dict[str, int] = {}
    for lt in order:
        placed = False
        for idx, contents in enumerate(registers):
            bad = forbidden.get(lt.variable, set())
            if any(
                lt.overlaps(other) or other.variable in bad
                for other in contents
            ):
                continue
            contents.append(lt)
            register_of[lt.variable] = idx
            placed = True
            break
        if not placed:
            registers.append([lt])
            register_of[lt.variable] = len(registers) - 1
    result = RegisterAssignment(register_of)
    result.verify(lifetimes)
    return result


def assign_registers_coloring(
    cdfg: CDFG,
    schedule: Schedule,
    extra_conflicts: Iterable[tuple[str, str]] = (),
    preferred_order: Iterable[str] | None = None,
) -> RegisterAssignment:
    """Conflict-graph-coloring register assignment.

    The general formulation (section 5.1); ``extra_conflicts`` carries
    the augmentation edges of the BIST assigner [3], and
    ``preferred_order`` lets callers seed the coloring with I/O
    variables as in [25].
    """
    lifetimes = variable_lifetimes(cdfg, schedule.steps)
    g = conflict_graph(lifetimes, extra_edges=extra_conflicts)
    colors = color_conflict_graph(g, preferred_order=preferred_order)
    result = RegisterAssignment(colors)
    result.verify(lifetimes)
    return result
