"""Conflict graphs and coloring for register assignment.

"A conventional method of assigning a set of variables to the minimum
number of registers is to color a conflict graph with the minimum
number of colors" (survey, section 5.1).  Nodes are variables; an edge
joins two variables whose lifetimes overlap.  The BIST assigner of [3]
adds *extra* conflict edges (same-module I/O pairs); that augmentation
lives in :mod:`repro.bist.self_adjacent` and reuses this machinery.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import networkx as nx

from repro.cdfg.graph import CDFG
from repro.cdfg.lifetimes import Lifetime


def conflict_graph(
    lifetimes: Mapping[str, Lifetime],
    extra_edges: Iterable[tuple[str, str]] = (),
) -> nx.Graph:
    """Build the variable conflict graph.

    ``extra_edges`` allows callers (e.g. the BIST assigner of [3]) to
    forbid additional sharings beyond lifetime overlap.
    """
    g = nx.Graph()
    names = sorted(lifetimes)
    g.add_nodes_from(names)
    for i, a in enumerate(names):
        la = lifetimes[a]
        for b in names[i + 1:]:
            if la.overlaps(lifetimes[b]):
                g.add_edge(a, b)
    for a, b in extra_edges:
        if a != b and a in g and b in g:
            g.add_edge(a, b)
    return g


def color_conflict_graph(
    graph: nx.Graph,
    preferred_order: Iterable[str] | None = None,
) -> dict[str, int]:
    """Greedy coloring; colors are register indices.

    With ``preferred_order`` the vertices are colored in that sequence
    (callers use it to seed I/O variables first, as in [25]); otherwise
    the largest-degree-first strategy is used, which is optimal on the
    interval-graph-like conflict graphs produced by acyclic schedules.
    """
    if preferred_order is not None:
        order = list(preferred_order)
        missing = [n for n in graph.nodes if n not in set(order)]
        order += sorted(missing, key=lambda n: -graph.degree(n))
        colors: dict[str, int] = {}
        for node in order:
            taken = {colors[n] for n in graph.neighbors(node) if n in colors}
            c = 0
            while c in taken:
                c += 1
            colors[node] = c
        return colors
    return nx.coloring.greedy_color(graph, strategy="largest_first")


def chromatic_lower_bound(graph: nx.Graph) -> int:
    """A cheap lower bound on the number of registers: max clique found
    greedily over the neighborhoods (exact on interval graphs)."""
    best = 1 if graph.number_of_nodes() else 0
    for node in graph.nodes:
        clique = {node}
        for cand in sorted(
            graph.neighbors(node), key=lambda n: -graph.degree(n)
        ):
            if all(graph.has_edge(cand, m) for m in clique):
                clique.add(cand)
        best = max(best, len(clique))
    return best
