"""RTL data-path construction from schedule + binding.

The data path is the structure all testability analyses operate on:
registers (possibly shared by several variables), functional units
(possibly shared by several operations), and the multiplexer
interconnect implied by that sharing.  The S-graph of section 3.1 is a
projection of this structure (see :mod:`repro.sgraph.build`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cdfg.graph import CDFG
from repro.cdfg.lifetimes import variable_lifetimes
from repro.hls.binding import FUBinding, RegisterAssignment
from repro.hls.scheduling import Schedule


@dataclass
class Register:
    """A data-path register holding one or more variables.

    ``scan``/``test_role`` are testability annotations filled in by the
    scan and BIST passes (``test_role`` is one of None, "TPGR", "SR",
    "BILBO", "CBILBO").
    """

    name: str
    index: int
    variables: tuple[str, ...]
    width: int
    is_input_register: bool
    is_output_register: bool
    scan: bool = False
    transparent_scan: bool = False
    test_role: str | None = None

    @property
    def is_io_register(self) -> bool:
        return self.is_input_register or self.is_output_register


@dataclass(frozen=True)
class FunctionalUnit:
    """A shared functional unit executing one or more operations."""

    name: str
    unit_class: str
    kinds: frozenset[str]
    operations: tuple[str, ...]
    width: int


@dataclass(frozen=True)
class Transfer:
    """One register transfer: ``dest <= unit(src_regs...)`` at a step."""

    operation: str
    unit: str
    step: int
    finish_step: int
    source_registers: tuple[str, ...]
    dest_register: str


class Datapath:
    """A bound RTL data path.

    Construct with :func:`build_datapath`.  Exposes registers, units,
    and the per-operation register transfers; all testability passes
    (S-graph, scan marking, BIST roles, gate expansion, controller
    generation) consume this object.
    """

    def __init__(
        self,
        cdfg: CDFG,
        schedule: Schedule,
        fu_binding: FUBinding,
        registers: list[Register],
        units: list[FunctionalUnit],
        transfers: list[Transfer],
        register_of: Mapping[str, int],
    ) -> None:
        self.cdfg = cdfg
        self.schedule = schedule
        self.fu_binding = fu_binding
        self.registers = registers
        self.units = units
        self.transfers = transfers
        self._register_of = dict(register_of)
        self._by_name = {r.name: r for r in registers}
        self._by_index = {r.index: r for r in registers}
        self._unit_by_name = {u.name: u for u in units}

    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.cdfg.name

    def register(self, name: str) -> Register:
        return self._by_name[name]

    def unit(self, name: str) -> FunctionalUnit:
        return self._unit_by_name[name]

    def register_of_variable(self, variable: str) -> Register:
        return self._by_index[self._register_of[variable]]

    def input_registers(self) -> list[Register]:
        return [r for r in self.registers if r.is_input_register]

    def output_registers(self) -> list[Register]:
        return [r for r in self.registers if r.is_output_register]

    def io_registers(self) -> list[Register]:
        return [r for r in self.registers if r.is_io_register]

    def scan_registers(self) -> list[Register]:
        return [r for r in self.registers if r.scan]

    def mark_scan(self, *register_names: str) -> None:
        """Flag registers as scan registers (partial-scan insertion)."""
        for n in register_names:
            self._by_name[n].scan = True

    # ------------------------------------------------------------------
    # interconnect structure

    def unit_input_sources(self) -> dict[str, list[set[str]]]:
        """Per unit, per input port: the set of source register names.

        The size of each set is the fan-in of that port's multiplexer.
        """
        out: dict[str, list[set[str]]] = {}
        for t in self.transfers:
            ports = out.setdefault(
                t.unit, [set() for _ in range(len(t.source_registers))]
            )
            while len(ports) < len(t.source_registers):
                ports.append(set())
            for i, src in enumerate(t.source_registers):
                ports[i].add(src)
        return out

    def register_sources(self) -> dict[str, set[str]]:
        """Per register: the set of sources (unit names and PI markers)."""
        out: dict[str, set[str]] = {r.name: set() for r in self.registers}
        for t in self.transfers:
            out[t.dest_register].add(t.unit)
        for var in self.cdfg.primary_inputs():
            reg = self.register_of_variable(var.name)
            out[reg.name].add(f"PI:{var.name}")
        return out

    def mux_count(self) -> int:
        """Total 2:1-equivalent multiplexer legs in the interconnect."""
        legs = 0
        for ports in self.unit_input_sources().values():
            for srcs in ports:
                legs += max(0, len(srcs) - 1)
        for srcs in self.register_sources().values():
            legs += max(0, len(srcs) - 1)
        return legs

    def __repr__(self) -> str:
        return (
            f"Datapath({self.name!r}, regs={len(self.registers)}, "
            f"units={len(self.units)}, transfers={len(self.transfers)})"
        )


def build_datapath(
    cdfg: CDFG,
    schedule: Schedule,
    fu_binding: FUBinding,
    reg_assignment: RegisterAssignment,
) -> Datapath:
    """Assemble the data path implied by a schedule and binding.

    Verifies the schedule and both bindings before construction.
    """
    schedule.verify(cdfg)
    fu_binding.verify(cdfg, schedule)
    lifetimes = variable_lifetimes(cdfg, schedule.steps)
    reg_assignment.verify(lifetimes)

    registers: list[Register] = []
    for idx in range(reg_assignment.num_registers):
        vs = tuple(reg_assignment.variables_in(idx))
        if not vs:
            continue
        width = max(cdfg.variable(v).width for v in vs)
        registers.append(
            Register(
                name=f"R{idx}",
                index=idx,
                variables=vs,
                width=width,
                is_input_register=any(cdfg.variable(v).is_input for v in vs),
                is_output_register=any(cdfg.variable(v).is_output for v in vs),
            )
        )
    index_map = {r.index: r for r in registers}

    unit_ops: dict[str, list[str]] = {}
    for op in cdfg:
        unit_ops.setdefault(fu_binding.unit_of(op.name), []).append(op.name)
    units = []
    for uname, ops in sorted(unit_ops.items()):
        kinds = frozenset(cdfg.operation(o).kind for o in ops)
        width = max(
            cdfg.variable(v).width
            for o in ops
            for v in cdfg.operation(o).inputs + (cdfg.operation(o).output,)
        )
        cls = uname.rstrip("0123456789")
        units.append(
            FunctionalUnit(uname, cls, kinds, tuple(sorted(ops)), width)
        )

    register_of = dict(reg_assignment.register_of)
    transfers = []
    for op in sorted(cdfg, key=lambda o: (schedule.step_of(o.name), o.name)):
        srcs = tuple(
            index_map[register_of[v]].name for v in op.inputs
        )
        dest = index_map[register_of[op.output]].name
        s = schedule.step_of(op.name)
        transfers.append(
            Transfer(
                operation=op.name,
                unit=fu_binding.unit_of(op.name),
                step=s,
                finish_step=s + op.delay - 1,
                source_registers=srcs,
                dest_register=dest,
            )
        )
    return Datapath(
        cdfg, schedule, fu_binding, registers, units, transfers, register_of
    )
