"""RTL testability analysis, after [11,12] (survey section 4.1).

"An RTL description can be used to identify the hard-to-test areas of
a design, by analyzing testability ranges and the minimum and maximum
number of clock cycles needed to control and observe an RTL node."

On a bound data path the RTL nodes are registers; the control distance
of a register is the number of register-transfer hops from a directly
controllable node (primary-input register or scan register), the
observe distance the hops to a directly observable one.  Registers on
loops get an unbounded maximum (the ATPG may have to iterate the loop),
which is what makes them the hard areas partial scan targets.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.hls.datapath import Datapath
from repro.sgraph.build import build_sgraph


@dataclass(frozen=True)
class NodeTestability:
    """Clock-cycle ranges to control and observe one register."""

    register: str
    min_control: int | None  # None: uncontrollable through the S-graph
    max_control: int | None  # None: unbounded (on a loop)
    min_observe: int | None
    max_observe: int | None
    on_loop: bool

    def score(self) -> float:
        """Hardness: big when far from I/O or on a loop."""
        c = self.min_control if self.min_control is not None else 99
        o = self.min_observe if self.min_observe is not None else 99
        return c + o + (10 if self.on_loop else 0)


def rtl_testability(datapath: Datapath) -> dict[str, NodeTestability]:
    """Per-register testability ranges of ``datapath``."""
    g = build_sgraph(datapath)
    controllable = [
        n for n, d in g.nodes(data=True)
        if d.get("is_input") or d.get("scan")
    ]
    observable = [
        n for n, d in g.nodes(data=True)
        if d.get("is_output") or d.get("scan")
    ]
    loop_nodes: set[str] = set()
    h = g.copy()
    h.remove_edges_from([(n, n) for n in g if g.has_edge(n, n)])
    for scc in nx.strongly_connected_components(h):
        if len(scc) >= 2:
            loop_nodes.update(scc)

    cmin = (
        nx.multi_source_dijkstra_path_length(g, controllable, weight=None)
        if controllable else {}
    )
    rev = g.reverse(copy=False)
    omin = (
        nx.multi_source_dijkstra_path_length(rev, observable, weight=None)
        if observable else {}
    )

    # Max cycles: longest acyclic distance; unbounded on loops.
    out: dict[str, NodeTestability] = {}
    dag_ok = nx.is_directed_acyclic_graph(h)
    cmax: dict[str, int] = {}
    omax: dict[str, int] = {}
    if dag_ok:
        for n in nx.topological_sort(h):
            preds = [
                cmax[p] + 1 for p in h.predecessors(n) if p in cmax
            ]
            if n in set(controllable):
                cmax[n] = max(preds, default=0)
            elif preds:
                cmax[n] = max(preds)
        for n in reversed(list(nx.topological_sort(h))):
            succs = [omax[s] + 1 for s in h.successors(n) if s in omax]
            if n in set(observable):
                omax[n] = max(succs, default=0)
            elif succs:
                omax[n] = max(succs)
    for r in datapath.registers:
        n = r.name
        on_loop = n in loop_nodes
        out[n] = NodeTestability(
            register=n,
            min_control=cmin.get(n),
            max_control=None if (on_loop or not dag_ok) else cmax.get(n),
            min_observe=omin.get(n),
            max_observe=None if (on_loop or not dag_ok) else omax.get(n),
            on_loop=on_loop,
        )
    return out


@dataclass(frozen=True)
class ControlAwareTestability:
    """[18]-style record: structural ranges *plus* control reachability.

    "Testability is measured not only based on sequential depth and
    testability characteristics of data path modules, but also the
    testability of registers is determined by analyzing the control
    logic used to control the loading of the registers."
    """

    register: str
    structural: NodeTestability
    #: control steps in which the controller asserts this register's load
    load_states: tuple[int, ...]
    #: fraction of control states that load the register
    load_frequency: float

    def score(self) -> float:
        """Hardness combining structure and control reachability.

        A register that the controller loads in only one state needs
        that exact state justified before any value can be set -- the
        control term adds the expected wait (1/frequency) in cycles.
        """
        control_penalty = (
            (1.0 / self.load_frequency - 1.0)
            if self.load_frequency > 0 else 50.0
        )
        return self.structural.score() + control_penalty


def control_aware_testability(
    datapath: Datapath, controller
) -> dict[str, ControlAwareTestability]:
    """Per-register testability including the controller's load logic.

    ``controller`` is a :class:`repro.hls.controller.Controller`; its
    words define when each register can actually capture.
    """
    structural = rtl_testability(datapath)
    n_words = max(1, controller.num_steps)
    out: dict[str, ControlAwareTestability] = {}
    for r in datapath.registers:
        loads = tuple(controller.load_steps(r.name))
        out[r.name] = ControlAwareTestability(
            register=r.name,
            structural=structural[r.name],
            load_states=loads,
            load_frequency=len(loads) / n_words,
        )
    return out


def hard_registers(datapath: Datapath, count: int) -> list[str]:
    """The ``count`` hardest registers by RTL testability score.

    This is the RTL-aware partial-scan candidate ordering of [11]: it
    uses register-transfer structure (loops, distances) invisible to a
    purely gate-level selector.
    """
    records = rtl_testability(datapath)
    ranked = sorted(
        records.values(), key=lambda r: (-r.score(), r.register)
    )
    return [r.register for r in ranked[:count]]
