"""RTL synthesis for testability (survey section 4).

* :mod:`~repro.rtl.testability` -- RTL testability analysis: the
  minimum/maximum clock cycles needed to control and observe each
  register node ([11,12], section 4.1).
* :mod:`~repro.rtl.test_points` -- non-scan DFT via k-level
  controllable/observable test points ([15], section 4.2).
* :mod:`~repro.rtl.transformations` -- full-scan restructuring report
  ([8], section 4.1): with every register scanned, the remaining
  combinational logic is fully stuck-at testable.
"""

from repro.rtl.testability import (
    ControlAwareTestability,
    NodeTestability,
    control_aware_testability,
    hard_registers,
    rtl_testability,
)
from repro.rtl.test_points import (
    TestPoint,
    insert_k_level_test_points,
    k_level_coverage,
)
from repro.rtl.transformations import fullscan_report, FullScanReport

__all__ = [
    "ControlAwareTestability",
    "NodeTestability",
    "control_aware_testability",
    "rtl_testability",
    "hard_registers",
    "TestPoint",
    "insert_k_level_test_points",
    "k_level_coverage",
    "fullscan_report",
    "FullScanReport",
]
