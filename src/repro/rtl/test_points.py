"""Non-scan DFT via k-level test points, after [15]
(Dey & Potkonjak, ICCAD'94 -- survey section 4.2).

"Instead of conventional techniques of breaking loops by making FFs
scannable, functional units are 'broken' by inserting test points,
implemented using register files and constants.  It is shown that it
suffices to make all the loops k-level (k>0) controllable and
observable to achieve very high test efficiency.  This new testability
measure eliminates the need ... to make one or more registers in each
loop directly (k=0) accessible, significantly reducing the number of
test points needed while maintaining high fault coverage."

A loop is *k-level controllable/observable* when some register on it is
within k register-transfer hops of a directly controllable node and
within k hops of a directly observable one.  With k=0 every loop needs
a directly accessible register (classic partial scan); with k>0 most
loops are already covered by their distance to I/O registers, and only
the remainder needs test points.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.hls.datapath import Datapath
from repro.hls.estimate import AREA_MODEL
from repro.sgraph.build import build_sgraph
from repro.sgraph.cycles import nontrivial_cycles


@dataclass(frozen=True)
class TestPoint:
    """A register-file/constant test point at a unit boundary.

    ``register`` names the S-graph node made directly accessible; the
    implementation cost is one test-point word at that node.
    """

    register: str
    width: int

    @property
    def area(self) -> float:
        return AREA_MODEL["test_point_bit"] * self.width


def _distances(g: nx.DiGraph) -> tuple[dict[str, int], dict[str, int]]:
    controllable = [
        n for n, d in g.nodes(data=True)
        if d.get("is_input") or d.get("scan")
    ]
    observable = [
        n for n, d in g.nodes(data=True)
        if d.get("is_output") or d.get("scan")
    ]
    cdist = (
        nx.multi_source_dijkstra_path_length(g, controllable, weight=None)
        if controllable else {}
    )
    odist = (
        nx.multi_source_dijkstra_path_length(
            g.reverse(copy=False), observable, weight=None
        )
        if observable else {}
    )
    return cdist, odist


def _loop_covered(
    loop: list[str], cdist, odist, extra: set[str], k: int
) -> bool:
    for n in loop:
        c = 0 if n in extra else cdist.get(n)
        o = 0 if n in extra else odist.get(n)
        if c is not None and o is not None and c <= k and o <= k:
            return True
    return False


def insert_k_level_test_points(
    datapath: Datapath, k: int, cycle_bound: int = 2000
) -> list[TestPoint]:
    """Greedy test-point insertion until every loop is k-level covered.

    With ``k=0`` this degenerates to the conventional requirement (a
    directly accessible register per loop) and the test-point count
    matches a feedback-set size; with ``k>0`` loops already within k
    hops of I/O need nothing, which is the [15] saving.
    """
    g = build_sgraph(datapath)
    cdist, odist = _distances(g)
    loops = nontrivial_cycles(g, bound=cycle_bound)
    chosen: set[str] = set()
    remaining = [
        l for l in loops if not _loop_covered(l, cdist, odist, chosen, k)
    ]
    while remaining:
        counts: dict[str, int] = {}
        for loop in remaining:
            for n in loop:
                counts[n] = counts.get(n, 0) + 1
        best = max(sorted(counts), key=lambda n: counts[n])
        chosen.add(best)
        # A test point makes the node directly accessible, which also
        # shortens distances of its neighbours; recompute conservatively
        # by treating chosen nodes as distance-0 sources.
        g2 = g.copy()
        for n in chosen:
            g2.nodes[n]["is_input"] = True
            g2.nodes[n]["is_output"] = True
        cdist, odist = _distances(g2)
        remaining = [
            l for l in loops if not _loop_covered(l, cdist, odist, chosen, k)
        ]
    return [
        TestPoint(n, g.nodes[n].get("width", 8)) for n in sorted(chosen)
    ]


def k_level_coverage(
    datapath: Datapath, k: int, cycle_bound: int = 2000
) -> float:
    """Fraction of S-graph loops already k-level covered (no insertion)."""
    g = build_sgraph(datapath)
    cdist, odist = _distances(g)
    loops = nontrivial_cycles(g, bound=cycle_bound)
    if not loops:
        return 1.0
    covered = sum(
        1 for l in loops if _loop_covered(l, cdist, odist, set(), k)
    )
    return covered / len(loops)
