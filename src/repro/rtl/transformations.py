"""Full-scan restructuring report, after [8] (survey section 4.1).

[8] restructures RTL control-data paths using don't-care conditions so
the full-scan design is 100% single-stuck-at testable.  In this
reproduction the restructuring target is demonstrated directly: with
every register scanned, the remaining combinational logic of our
expanded data paths is fully exercised by combinational ATPG, and the
report records the achieved coverage and any aborted faults (which
would be the redundancies [8] removes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gatelevel.expand import expand_datapath
from repro.gatelevel.faults import all_faults
from repro.gatelevel.test_generation import generate_tests
from repro.hls.datapath import Datapath


@dataclass(frozen=True)
class FullScanReport:
    """Combinational testability of a full-scan data path."""

    design: str
    total_faults: int
    detected: int
    aborted: int
    untestable: int

    @property
    def coverage(self) -> float:
        return self.detected / self.total_faults if self.total_faults else 1.0

    @property
    def test_efficiency(self) -> float:
        """Detected-or-proven-untestable fraction (the [8] metric)."""
        if not self.total_faults:
            return 1.0
        return (self.detected + self.untestable) / self.total_faults


def fullscan_report(
    datapath: Datapath,
    backtrack_limit: int = 300,
    max_faults: int | None = None,
    backend: str | None = None,
    atpg_backend: str | None = None,
    predrop: int | None = None,
    shards: int | None = None,
) -> FullScanReport:
    """Scan every register, expand, and run combinational ATPG.

    ``max_faults`` caps the fault sample for large designs (faults are
    taken in sorted order, deterministic).  ATPG runs with fault
    dropping (:func:`repro.gatelevel.test_generation.generate_tests`):
    random-pattern pre-drop detects the easy faults in bulk, each
    generated vector is fault-simulated against the remaining faults
    on the compiled kernel, and only random-resistant undetected
    faults reach PODEM -- same counts as the old one-PODEM-per-fault
    loop, minus the redundant searches.  ``atpg_backend``, ``predrop``
    and ``shards`` forward to :func:`generate_tests`.
    """
    datapath.mark_scan(*[r.name for r in datapath.registers])
    netlist, _ctrl = expand_datapath(datapath)
    faults = all_faults(netlist)
    if max_faults is not None:
        faults = faults[:max_faults]
    ts = generate_tests(
        netlist, faults=faults, backtrack_limit=backtrack_limit,
        backend=backend, atpg_backend=atpg_backend, predrop=predrop,
        shards=shards,
    )
    return FullScanReport(
        design=datapath.name,
        total_faults=len(faults),
        detected=len(ts.detected),
        aborted=len(ts.aborted),
        untestable=len(ts.untestable),
    )
