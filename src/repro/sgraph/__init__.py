"""S-graph analysis (survey section 3.1).

"Each node in the S-graph corresponds to a FF, and there is a directed
edge from node u to node v if there is a strictly combinational path
from FF u to FF v."  At the RT level the nodes are data-path registers;
a transfer ``Rd <= f(Rs...)`` contributes edges ``Rs -> Rd``.

The package provides S-graph construction from a
:class:`~repro.hls.datapath.Datapath`, cycle/self-loop/sequential-depth
analysis, minimum-feedback-vertex-set selection (the conventional
gate-level partial-scan criterion), and the empirical sequential-ATPG
cost model the survey cites: effort grows *exponentially with loop
length* and *linearly with sequential depth*.
"""

from repro.sgraph.build import build_sgraph, sgraph_without_scan
from repro.sgraph.cycles import (
    self_loops,
    nontrivial_cycles,
    sequential_depth,
    is_loop_free,
)
from repro.sgraph.mfvs import (
    exact_mfvs,
    greedy_mfvs,
    minimum_feedback_vertex_set,
    weighted_mfvs,
)
from repro.sgraph.atpg_cost import TestabilityCost, estimate_cost

__all__ = [
    "build_sgraph",
    "sgraph_without_scan",
    "self_loops",
    "nontrivial_cycles",
    "sequential_depth",
    "is_loop_free",
    "greedy_mfvs",
    "exact_mfvs",
    "minimum_feedback_vertex_set",
    "weighted_mfvs",
    "TestabilityCost",
    "estimate_cost",
]
