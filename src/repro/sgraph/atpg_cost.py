"""Empirical sequential-ATPG cost model (survey section 3.1).

"It has been empirically observed [10,22] that the complexity of
generating sequential test patterns grows exponentially with the length
of cycles in the S-graph, and linearly with the sequential depth of the
FFs."  This module turns that observation into the scalar testability
cost used by the loop-aware binder of [33] and calibrated against our
own time-frame ATPG in ``benchmarks/bench_atpg_cost.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.sgraph.build import sgraph_without_scan
from repro.sgraph.cycles import (
    nontrivial_cycles,
    self_loops,
    sequential_depth,
)

#: Base of the exponential loop-length term.  Calibrated (order of
#: magnitude) against the time-frame ATPG backtrack counts; the
#: orderings the benches assert are insensitive to the exact value.
LOOP_BASE = 4.0

#: Weight of the linear sequential-depth term.
DEPTH_WEIGHT = 1.0

#: Weight of a tolerated self-loop (small but nonzero: a self-loop
#: still forces multi-time-frame justification).
SELF_LOOP_WEIGHT = 0.5


@dataclass(frozen=True)
class TestabilityCost:
    """Topology summary plus the scalar ATPG-effort estimate."""

    num_cycles: int
    max_cycle_length: int
    num_self_loops: int
    depth: int
    score: float

    def __str__(self) -> str:
        return (
            f"cycles={self.num_cycles} (max len {self.max_cycle_length}), "
            f"self-loops={self.num_self_loops}, depth={self.depth}, "
            f"score={self.score:.1f}"
        )


def estimate_cost(
    sgraph: nx.DiGraph,
    cycle_bound: int = 2000,
    respect_scan: bool = True,
) -> TestabilityCost:
    """Estimate sequential-ATPG effort for an S-graph.

    ``score = sum(LOOP_BASE ** len(cycle)) + SELF_LOOP_WEIGHT * #selfloops
    + DEPTH_WEIGHT * depth`` over the graph with scanned registers
    removed (unless ``respect_scan`` is False).
    """
    g = sgraph_without_scan(sgraph) if respect_scan else sgraph
    cycles = nontrivial_cycles(g, bound=cycle_bound)
    selfs = self_loops(g)
    depth = sequential_depth(g)
    score = (
        sum(LOOP_BASE ** len(c) for c in cycles)
        + SELF_LOOP_WEIGHT * len(selfs)
        + DEPTH_WEIGHT * depth
    )
    return TestabilityCost(
        num_cycles=len(cycles),
        max_cycle_length=max((len(c) for c in cycles), default=0),
        num_self_loops=len(selfs),
        depth=depth,
        score=score,
    )
