"""Minimum feedback vertex set (MFVS) selection.

The conventional gate-level partial-scan criterion ([10,22], survey
section 3.3.1): choose a minimum set of flip-flops whose removal breaks
every nontrivial S-graph cycle.  Self-loops are tolerated and never
force a selection.

Two solvers are provided: an exact search (branch-and-bound over the
cycle cover, practical to ~25 cycle nodes) and the classic greedy
heuristic (repeatedly scan the node on the most currently-unbroken
short cycles).  :func:`minimum_feedback_vertex_set` dispatches by size.
"""

from __future__ import annotations

from itertools import combinations

import networkx as nx


def _cyclic_core(sgraph: nx.DiGraph) -> nx.DiGraph:
    """Subgraph induced by nodes on nontrivial cycles, self-loops removed."""
    g = sgraph.copy()
    g.remove_edges_from([(n, n) for n in sgraph.nodes if sgraph.has_edge(n, n)])
    core_nodes: set[str] = set()
    for scc in nx.strongly_connected_components(g):
        if len(scc) >= 2:
            core_nodes.update(scc)
    return g.subgraph(core_nodes).copy()


def _breaks_all(g: nx.DiGraph, chosen: set[str]) -> bool:
    h = g.copy()
    h.remove_nodes_from(chosen)
    return nx.is_directed_acyclic_graph(h)


def greedy_mfvs(sgraph: nx.DiGraph) -> set[str]:
    """Greedy feedback vertex set: highest (in*out)-degree node first.

    The classic Lee-Reddy-style heuristic: repeatedly remove the node
    most likely to lie on many cycles until the remainder is acyclic.
    """
    core = _cyclic_core(sgraph)
    chosen: set[str] = set()
    while core.number_of_nodes() and not nx.is_directed_acyclic_graph(core):
        node = max(
            core.nodes,
            key=lambda n: (core.in_degree(n) * core.out_degree(n), n),
        )
        chosen.add(node)
        core.remove_node(node)
        core = _cyclic_core(core)
    return chosen


def exact_mfvs(sgraph: nx.DiGraph, max_nodes: int = 22) -> set[str]:
    """Exact MFVS by increasing-size subset search.

    Raises :class:`ValueError` when the cyclic core exceeds
    ``max_nodes`` (use :func:`greedy_mfvs` or the dispatcher instead).
    """
    core = _cyclic_core(sgraph)
    nodes = sorted(core.nodes)
    if len(nodes) > max_nodes:
        raise ValueError(
            f"cyclic core has {len(nodes)} nodes; exact search capped at "
            f"{max_nodes}"
        )
    if nx.is_directed_acyclic_graph(core):
        return set()
    upper = greedy_mfvs(sgraph)
    for size in range(1, len(upper)):
        for combo in combinations(nodes, size):
            if _breaks_all(core, set(combo)):
                return set(combo)
    return upper


def minimum_feedback_vertex_set(sgraph: nx.DiGraph) -> set[str]:
    """Best-effort MFVS: exact when the cyclic core is small, else greedy."""
    core = _cyclic_core(sgraph)
    if core.number_of_nodes() <= 14:
        return exact_mfvs(sgraph)
    return greedy_mfvs(sgraph)


def weighted_mfvs(
    sgraph: nx.DiGraph,
    weight_attr: str = "width",
    cycle_bound: int = 400,
) -> set[str]:
    """Feedback vertex set minimising total node *weight*.

    Registers are not all the same size: scanning a wide register costs
    more scan FFs than a narrow one, so the real objective of partial
    scan is weighted.  Branch-and-bound over the cycle cover (branch on
    the nodes of an uncovered cycle, prune by the best weight found);
    exact for the enumerated cycles, which is all of them on the
    data-path sizes here.
    """
    core = _cyclic_core(sgraph)
    cycles: list[list[str]] = []
    for cyc in nx.simple_cycles(core):
        cycles.append(list(cyc))
        if len(cycles) >= cycle_bound:
            break
    if not cycles:
        return set()

    def w(node: str) -> float:
        return float(sgraph.nodes[node].get(weight_attr, 1) or 1)

    best: tuple[float, set[str]] = (
        sum(w(n) for n in greedy_mfvs(sgraph)),
        greedy_mfvs(sgraph),
    )

    def dfs(chosen: set[str], cost: float, remaining: list[list[str]]):
        nonlocal best
        if cost >= best[0]:
            return
        uncovered = [c for c in remaining if not chosen.intersection(c)]
        if not uncovered:
            # Cycle cover complete; confirm true acyclicity (cycles
            # beyond the enumeration bound may persist -- branch on one
            # of those when found).
            h = core.copy()
            h.remove_nodes_from(chosen)
            if nx.is_directed_acyclic_graph(h):
                best = (cost, set(chosen))
                return
            extra = [u for u, _v in nx.find_cycle(h)]
            for node in sorted(set(extra), key=w):
                dfs(chosen | {node}, cost + w(node), remaining)
            return
        cycle = min(uncovered, key=len)
        for node in sorted(cycle, key=w):
            dfs(chosen | {node}, cost + w(node), uncovered)

    dfs(set(), 0.0, cycles)
    return best[1]
