"""Cycle and depth analysis on S-graphs.

Gate-level partial-scan practice (survey section 3.1): "break all
loops, except self-loops, and minimize sequential depth."  The helpers
here therefore distinguish self-loops (tolerated) from nontrivial
cycles (to be broken) and compute sequential depth on the loop-broken
graph.
"""

from __future__ import annotations

import networkx as nx


def self_loops(sgraph: nx.DiGraph) -> list[str]:
    """Registers with a combinational path back to themselves."""
    return sorted(n for n in sgraph.nodes if sgraph.has_edge(n, n))


def nontrivial_cycles(
    sgraph: nx.DiGraph, bound: int | None = None
) -> list[list[str]]:
    """Simple cycles of length >= 2, shortest first.

    ``bound`` caps enumeration on dense graphs.
    """
    out: list[list[str]] = []
    for cyc in nx.simple_cycles(sgraph):
        if len(cyc) < 2:
            continue
        out.append(list(cyc))
        if bound is not None and len(out) >= bound:
            break
    out.sort(key=len)
    return out


def is_loop_free(sgraph: nx.DiGraph, tolerate_self_loops: bool = True) -> bool:
    """True when the S-graph has no cycles (optionally ignoring self-loops)."""
    g = sgraph
    if tolerate_self_loops:
        g = sgraph.copy()
        g.remove_edges_from([(n, n) for n in sgraph.nodes if sgraph.has_edge(n, n)])
    return nx.is_directed_acyclic_graph(g)


def sequential_depth(sgraph: nx.DiGraph) -> int:
    """Length (in edges) of the longest register-to-register path.

    Self-loops are ignored; on a cyclic S-graph the depth is computed on
    the condensation (each strongly connected component contributes its
    size, the loop's worst-case traversal before ATPG revisits state).
    """
    g = sgraph.copy()
    g.remove_edges_from([(n, n) for n in sgraph.nodes if sgraph.has_edge(n, n)])
    if g.number_of_nodes() == 0:
        return 0
    if nx.is_directed_acyclic_graph(g):
        return nx.dag_longest_path_length(g)
    cond = nx.condensation(g)
    weights = {n: len(cond.nodes[n]["members"]) for n in cond.nodes}
    # DP over the condensation: each SCC contributes its size - 1 edges
    # (the worst-case traversal inside the loop).
    best_to: dict[int, int] = {}
    for n in nx.topological_sort(cond):
        base = max(
            (best_to[p] + 1 for p in cond.predecessors(n)), default=0
        )
        best_to[n] = base + (weights[n] - 1)
    return max(best_to.values(), default=0)


def input_to_output_depth(sgraph: nx.DiGraph) -> int | None:
    """Shortest-path view of section 3.2: the worst register's distance
    budget from an input register plus to an output register.

    Returns the maximum over registers of
    ``dist(input regs -> r) + dist(r -> output regs)``, or None when
    some register is unreachable/unobservable through the S-graph.
    """
    inputs = [n for n, d in sgraph.nodes(data=True) if d.get("is_input")]
    outputs = [n for n, d in sgraph.nodes(data=True) if d.get("is_output")]
    if not inputs or not outputs:
        return None
    dist_from_in = nx.multi_source_dijkstra_path_length(
        sgraph, inputs, weight=None
    )
    rev = sgraph.reverse(copy=False)
    dist_to_out = nx.multi_source_dijkstra_path_length(
        rev, outputs, weight=None
    )
    worst = 0
    for n in sgraph.nodes:
        if n not in dist_from_in or n not in dist_to_out:
            return None
        worst = max(worst, dist_from_in[n] + dist_to_out[n])
    return worst
