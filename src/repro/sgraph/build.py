"""S-graph construction from a bound data path."""

from __future__ import annotations

import networkx as nx

from repro.hls.datapath import Datapath


def build_sgraph(datapath: Datapath) -> nx.DiGraph:
    """The register adjacency graph of ``datapath``.

    Nodes are register names with attributes ``is_input``/``is_output``
    (connection to primary I/O) and ``scan``.  Each transfer
    ``Rd <= unit(Rs...)`` contributes edges ``Rs -> Rd`` annotated with
    the unit and operation; parallel contributions merge, accumulating
    operations on the edge's ``operations`` list.
    """
    g = nx.DiGraph(name=f"sgraph:{datapath.name}")
    for r in datapath.registers:
        g.add_node(
            r.name,
            is_input=r.is_input_register,
            is_output=r.is_output_register,
            scan=r.scan or r.transparent_scan,
            width=r.width,
        )
    for t in datapath.transfers:
        for src in set(t.source_registers):
            if g.has_edge(src, t.dest_register):
                g[src][t.dest_register]["operations"].append(t.operation)
            else:
                g.add_edge(
                    src,
                    t.dest_register,
                    operations=[t.operation],
                    unit=t.unit,
                )
    return g


def sgraph_without_scan(sgraph: nx.DiGraph) -> nx.DiGraph:
    """Remove scanned registers (they become pseudo primary I/O).

    A scan register is directly controllable and observable via the
    scan chain, so for ATPG-topology purposes it no longer participates
    in loops or depth: its node is deleted, cutting every path through
    it.
    """
    g = sgraph.copy()
    g.remove_nodes_from(
        [n for n, d in sgraph.nodes(data=True) if d.get("scan")]
    )
    return g
