"""Delta-debugging reduction of divergent designs to minimal reproducers.

Classic ddmin (Zeller & Hildebrandt, "Simplifying and Isolating
Failure-Inducing Input", TSE 2002) over the netlist's non-input gates:
drop a chunk of gates, rewire anything that referenced them to fresh
surrogate primary inputs (``rz*``), re-run the failing oracle on the
reduced design, and keep the reduction whenever the non-match outcome
survives.  A few hundred oracle re-checks typically shrink a
1-2k-gate divergent cloud to a handful of gates -- the difference
between "seed 81734529 diverges" and a reproducer a human can read.

The end product is :func:`emit_reproducer`: a self-contained, runnable
pytest file under ``tests/repros/`` that rebuilds the minimized netlist
literally (no generator dependency -- the reproducer survives generator
changes) and re-asserts the oracle.
"""

from __future__ import annotations

import io
from typing import Callable

from repro.gatelevel.gates import COMBINATIONAL_KINDS, Netlist


def reduce_netlist(netlist: Netlist, keep: set[str]) -> Netlist:
    """A copy of ``netlist`` retaining only ``keep`` non-input gates.

    Primary inputs always survive.  A retained gate whose fanin was
    dropped gets a fresh surrogate PI (``rz<j>``, one per dropped net,
    memoised so repeated references share it), keeping every retained
    gate well-formed without hauling in the dropped cone.  Outputs are
    filtered to surviving nets; if none survive, the last retained
    combinational gate is observed instead so the design still
    simulates meaningfully.
    """
    out = Netlist(f"{netlist.name}_min")
    pis = list(netlist.inputs())
    retained = {g.name for g in netlist if g.kind != "input"
                and g.name in keep}
    known = set(pis) | retained
    surrogates: dict[str, str] = {}

    def _net(ref: str) -> str:
        if ref in known:
            return ref
        if ref not in surrogates:
            sur = f"rz{len(surrogates)}"
            surrogates[ref] = sur
            out.add(sur, "input")
        return surrogates[ref]

    for pi in pis:
        out.add(pi, "input")
    last_comb = None
    for g in netlist:
        if g.kind == "input" or g.name not in retained:
            continue
        out.add(g.name, g.kind, *(_net(src) for src in g.inputs),
                scan=g.scan)
        if g.kind in COMBINATIONAL_KINDS:
            last_comb = g.name
    for o in netlist.outputs:
        if o in known:
            out.add_output(o)
    # Observe retained combinational gates whose consumers were
    # dropped (mirrors genscale's mop-up): the reduced design stays
    # strictly valid and every surviving gate keeps a fault cone.
    consumed = {src for g in out for src in g.inputs}
    observed = set(out.outputs)
    for g in out:
        if (g.kind in COMBINATIONAL_KINDS
                and g.name not in consumed
                and g.name not in observed):
            out.add_output(g.name)
            observed.add(g.name)
    if not out.outputs and last_comb is not None:
        out.add_output(last_comb)
    return out


def minimize_netlist(
    netlist: Netlist,
    check: Callable[[Netlist], bool],
    max_checks: int = 160,
) -> tuple[Netlist, int]:
    """ddmin: the smallest found sub-netlist on which ``check`` holds.

    ``check(candidate)`` must return True when the candidate still
    triggers the original finding.  Returns ``(minimized, n_checks)``;
    the input netlist is returned unchanged if no reduction survives
    the check (or ``check`` rejects even the unreduced design).
    """
    names = [g.name for g in netlist if g.kind != "input"]
    if not names or not check(reduce_netlist(netlist, set(names))):
        return netlist, 1
    checks = 1
    current = names
    n = 2
    while len(current) >= 2 and checks < max_checks:
        size = max(1, len(current) // n)
        chunks = [current[i:i + size]
                  for i in range(0, len(current), size)]
        reduced = False
        # Try each complement (drop one chunk, keep the rest).
        for i in range(len(chunks)):
            if checks >= max_checks:
                break
            candidate = [g for j, ch in enumerate(chunks)
                         for g in ch if j != i]
            if not candidate:
                continue
            checks += 1
            if check(reduce_netlist(netlist, set(candidate))):
                current = candidate
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(current):
                break
            n = min(len(current), n * 2)
    return reduce_netlist(netlist, set(current)), checks


# ---------------------------------------------------------------------------
# pytest emission

def _literal_builder(netlist: Netlist, buf: io.StringIO) -> None:
    buf.write("def build() -> Netlist:\n")
    buf.write(f"    nl = Netlist({netlist.name!r})\n")
    for g in netlist:
        args = ", ".join(repr(s) for s in (g.name, g.kind, *g.inputs))
        scan = ", scan=True" if g.scan else ""
        buf.write(f"    nl.add({args}{scan})\n")
    for o in netlist.outputs:
        buf.write(f"    nl.add_output({o!r})\n")
    buf.write("    return nl\n")


def emit_reproducer(
    path: str,
    netlist: Netlist,
    spec,
    finding: dict,
    origin: str,
) -> None:
    """Write a self-contained pytest file re-asserting the finding.

    Injected-bug findings (``oracle="injected:<bug>"``) assert the
    synthetic divergence still fires -- they pass as committed and
    document the minimizer pipeline end to end.  Real oracle findings
    assert the configuration pair *agrees* -- the test fails until the
    underlying divergence is fixed, then guards it forever.
    """
    oracle = finding["oracle"]
    buf = io.StringIO()
    buf.write('"""Minimized fuzzing reproducer -- auto-generated.\n\n')
    buf.write(f"origin:  {origin}\n")
    buf.write(f"oracle:  {oracle}\n")
    buf.write(f"outcome: {finding['outcome']}\n")
    detail = finding.get("detail")
    if detail:
        buf.write(f"detail:  {detail}\n")
    buf.write('"""\n\n')
    buf.write("from repro.gatelevel.gates import Netlist\n")
    buf.write("from repro.fuzz.generator import DesignSpec\n")
    if oracle.startswith("injected:"):
        buf.write("from repro.fuzz.oracles "
                  "import injected_divergence\n")
    else:
        buf.write("from repro.fuzz.oracles import check_oracle\n")
    buf.write("\n\nSPEC = DesignSpec.from_dict(%r)\n\n\n"
              % (spec.to_dict(),))
    _literal_builder(netlist, buf)
    buf.write("\n\n")
    if oracle.startswith("injected:"):
        bug = oracle.split(":", 1)[1]
        buf.write(f"def test_injected_{bug}_still_fires():\n")
        buf.write("    nl = build()\n")
        buf.write(f"    assert injected_divergence({bug!r}, nl, SPEC) "
                  "is not None\n")
    else:
        fn = oracle.replace("-", "_")
        buf.write(f"def test_{fn}_configs_agree():\n")
        buf.write("    nl = build()\n")
        buf.write(f"    finding = check_oracle({oracle!r}, nl, SPEC)\n")
        buf.write("    assert finding is None, finding\n")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(buf.getvalue())
