"""The fuzzing campaign driver: bandit loop, journal, resume, minimize.

A campaign is a deterministic function of ``(seed, trial budget,
policy, arm grid)``: trial ``t`` uses the derived spec seed
``seed * 100003 + t``, the policy is updated from journalled rewards
only, and journal lines carry **no timing data** -- so the same seed
and budget reproduce the identical journal byte-for-byte, and
``--resume`` after a mid-campaign SIGKILL replays the surviving prefix
(torn final line truncated) into the policy and continues to the same
final journal.

The journal is append-only JSONL, one header line then one line per
trial, each write flushed and fsynced before the trial is considered
done.  Divergent designs are minimized (ddmin, in-process re-checks)
and emitted as pytest reproducers; the journal records the reproducer
path and the gate-count shrink.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Callable

from repro.fuzz.bandit import LinUCB, UniformPolicy
from repro.fuzz.generator import OP_MIXES, PROFILES, Arm, DesignSpec
from repro.fuzz.minimize import emit_reproducer, minimize_netlist
from repro.fuzz.oracles import (
    ORACLES,
    LegRunner,
    check_oracle,
    injected_divergence,
    run_oracle,
)

JOURNAL_VERSION = 1

#: gate-count buckets the arm grid spans (filtered by ``max_gates``).
SIZE_BUCKETS = (80, 300, 1200, 5000, 20000)

#: non-match severity order for the per-trial summary outcome.
_SEVERITY = {"match": 0, "hang": 1, "crash": 2, "divergence": 3}


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that shapes a campaign (and its journal header)."""

    seed: int = 0
    trials: int = 50
    seconds: float | None = None
    policy: str = "linucb"
    alpha: float = 1.2
    max_gates: int = 1500
    shards: tuple[int, ...] = (2,)
    transports: tuple[str, ...] = ("shm", "pickle")
    oracles: tuple[str, ...] | None = None
    inject: str | None = None
    timeout: float | None = None
    exec_mode: str | None = None
    journal: str = "fuzz_journal.jsonl"
    repro_dir: str = "tests/repros"
    minimize: bool = True

    def oracle_names(self) -> tuple[str, ...]:
        if self.oracles is not None:
            return self.oracles
        return tuple(ORACLES)

    def header(self, n_arms: int) -> dict:
        """The journal header; any field here participates in the
        resume compatibility check."""
        return {
            "kind": "header",
            "version": JOURNAL_VERSION,
            "seed": self.seed,
            "trials": self.trials,
            "policy": self.policy,
            "alpha": self.alpha,
            "max_gates": self.max_gates,
            "shards": list(self.shards),
            "transports": list(self.transports),
            "oracles": list(self.oracle_names()),
            "inject": self.inject,
            "arms": n_arms,
        }


def build_arms(max_gates: int = 1500) -> list[Arm]:
    """The discrete arm grid: op mix x size bucket x state profile."""
    sizes = [s for s in SIZE_BUCKETS if s <= max_gates] or [
        SIZE_BUCKETS[0]
    ]
    arms = []
    for mix in sorted(OP_MIXES):
        for n_gates in sizes:
            for profile, dff_ratio, scan, bist in PROFILES:
                arms.append(Arm(
                    index=len(arms),
                    op_mix=mix,
                    n_gates=n_gates,
                    profile=profile,
                    dff_ratio=dff_ratio,
                    scan=scan,
                    bist=bist,
                ))
    return arms


def _make_policy(config: CampaignConfig, dim: int):
    if config.policy == "uniform":
        return UniformPolicy(seed=config.seed)
    if config.policy == "linucb":
        return LinUCB(dim, alpha=config.alpha)
    raise ValueError(
        f"unknown policy {config.policy!r}; pick linucb or uniform"
    )


# ---------------------------------------------------------------------------
# journal

def _dumps(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _append(path: str, obj: dict) -> None:
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(_dumps(obj) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def load_journal(path: str) -> tuple[dict | None, list[dict]]:
    """``(header, trial_lines)``; truncates a torn final line in place.

    A SIGKILL mid-write leaves at most one partial line at the tail;
    everything before it was fsynced whole.  Truncating the tail makes
    resume re-run that trial -- deterministic, so the re-run writes the
    identical line the kill interrupted.
    """
    if not os.path.exists(path):
        return None, []
    good: list[dict] = []
    good_end = 0
    with open(path, "rb") as fh:
        data = fh.read()
    for raw in data.splitlines(keepends=True):
        if not raw.endswith(b"\n"):
            break
        try:
            good.append(json.loads(raw))
        except json.JSONDecodeError:
            break
        good_end += len(raw)
    if good_end < len(data):
        with open(path, "r+b") as fh:
            fh.truncate(good_end)
    if not good:
        return None, []
    header = good[0] if good[0].get("kind") == "header" else None
    trials = [line for line in good[1:] if line.get("kind") == "trial"]
    return header, trials


# ---------------------------------------------------------------------------
# one trial

def _worst_outcome(findings: list[dict]) -> str:
    worst = "match"
    for f in findings:
        if _SEVERITY[f["outcome"]] > _SEVERITY[worst]:
            worst = f["outcome"]
    return worst


def _run_trial_oracles(
    netlist, spec: DesignSpec, config: CampaignConfig,
    runner: LegRunner,
) -> list[dict]:
    if config.inject:
        finding = injected_divergence(config.inject, netlist, spec)
        return [finding] if finding else []
    options = {
        "shards": config.shards,
        "transports": config.transports,
    }
    findings = []
    for name in config.oracle_names():
        finding = run_oracle(ORACLES[name], netlist, spec, runner,
                             options=options)
        if finding:
            findings.append(finding)
    return findings


def _minimize_finding(
    finding: dict, netlist, spec: DesignSpec,
    config: CampaignConfig, trial: int,
) -> None:
    """Shrink a divergence and emit the reproducer; annotates the
    finding dict in place (repro path, gate shrink, check count)."""
    oracle = finding["oracle"]
    if oracle.startswith("injected:"):
        bug = oracle.split(":", 1)[1]

        def check(nl) -> bool:
            return injected_divergence(bug, nl, spec) is not None
    else:
        def check(nl) -> bool:
            got = check_oracle(oracle, nl, spec,
                               options={"shards": config.shards,
                                        "transports": config.transports})
            return (got is not None
                    and got["outcome"] == finding["outcome"])

    minimized, checks = minimize_netlist(netlist, check)
    os.makedirs(config.repro_dir, exist_ok=True)
    slug = oracle.replace(":", "_").replace("-", "_")
    path = os.path.join(
        config.repro_dir, f"test_repro_{slug}_s{spec.seed}.py"
    )
    emit_reproducer(
        path, minimized, spec, finding,
        origin=(f"campaign seed={config.seed} trial={trial} "
                f"spec_seed={spec.seed}"),
    )
    def _n(nl) -> int:
        return sum(1 for g in nl if g.kind != "input")

    finding["repro"] = path
    finding["orig_gates"] = _n(netlist)
    finding["min_gates"] = _n(minimized)
    finding["min_checks"] = checks


# ---------------------------------------------------------------------------
# the campaign loop

def run_campaign(
    config: CampaignConfig,
    resume: bool = False,
    log: Callable[[str], None] | None = None,
) -> dict:
    """Run (or resume) a campaign; returns the summary dict.

    The summary carries outcome counts, the flat list of findings, and
    the journal path -- timing lives only here, never in the journal.
    """
    say = log or (lambda msg: None)
    arms = build_arms(config.max_gates)
    contexts = [arm.features() for arm in arms]
    policy = _make_policy(config, dim=len(contexts[0]))
    header = config.header(len(arms))

    start_trial = 0
    if resume:
        old_header, done = load_journal(config.journal)
        if old_header is None:
            raise ValueError(
                f"cannot resume: {config.journal} has no valid header"
            )
        if old_header != header:
            raise ValueError(
                "cannot resume: journal header does not match this "
                f"configuration ({config.journal})"
            )
        for line in done:
            policy.update(contexts[line["arm"]], line["reward"])
        start_trial = len(done)
        say(f"resuming at trial {start_trial}/{config.trials} "
            f"({config.journal})")
    else:
        if os.path.exists(config.journal):
            os.remove(config.journal)
        _append(config.journal, header)

    t_start = time.monotonic()
    outcomes = {"match": 0, "divergence": 0, "crash": 0, "hang": 0}
    all_findings: list[dict] = []
    trials_run = 0
    with LegRunner(mode=config.exec_mode,
                   timeout=config.timeout) as runner:
        for trial in range(start_trial, config.trials):
            if (config.seconds is not None
                    and time.monotonic() - t_start >= config.seconds):
                say(f"wall-clock budget reached after "
                    f"{trials_run} trials")
                break
            arm_idx = policy.select(contexts)
            arm = arms[arm_idx]
            spec = arm.spec(config.seed * 100003 + trial)
            netlist = spec.build()
            findings = _run_trial_oracles(netlist, spec, config, runner)
            if config.minimize:
                for finding in findings:
                    if finding["outcome"] == "divergence":
                        _minimize_finding(finding, netlist, spec,
                                          config, trial)
            reward = 1.0 if findings else 0.0
            policy.update(contexts[arm_idx], reward)
            outcome = _worst_outcome(findings)
            outcomes[outcome] += 1
            all_findings.extend(findings)
            _append(config.journal, {
                "kind": "trial",
                "trial": trial,
                "arm": arm_idx,
                "spec": spec.to_dict(),
                "outcome": outcome,
                "findings": findings,
                "reward": reward,
            })
            trials_run += 1
            if findings:
                say(f"trial {trial} [{arm.label()}]: {outcome} "
                    f"({', '.join(f['oracle'] for f in findings)})")
            elif trial % 10 == 0:
                say(f"trial {trial} [{arm.label()}]: match")

    elapsed = time.monotonic() - t_start
    return {
        "seed": config.seed,
        "policy": config.policy,
        "arms": len(arms),
        "trials": trials_run,
        "start_trial": start_trial,
        "outcomes": outcomes,
        "findings": all_findings,
        "journal": config.journal,
        "elapsed_s": round(elapsed, 2),
        "trials_per_min": round(
            60.0 * trials_run / elapsed, 1) if elapsed > 0 else 0.0,
    }
