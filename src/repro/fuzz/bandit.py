"""Arm-selection policies for the fuzzing campaign.

:class:`LinUCB` is the standard disjoint-model linear UCB contextual
bandit (Li et al., "A Contextual-Bandit Approach to Personalized News
Article Recommendation", WWW 2010), in pure numpy: one shared ridge
model ``A = lam*I + sum(x x^T)``, ``b = sum(r x)`` over the arm feature
vectors, scoring each arm ``x`` by ``theta^T x + alpha *
sqrt(x^T A^-1 x)``.  A shared model (rather than per-arm models) is the
right shape here because the arm contexts are *structural design
features* -- a reward observed on the ``xor_heavy/scan`` arm genuinely
transfers to ``xor_heavy/bist``, which is how the bandit beats uniform
sampling on trials-to-first-find.

Everything is deterministic: ties break toward the lowest arm index,
and with L2-normalised contexts (see :meth:`Arm.features`) the cold
model scores every untried arm equally, so the opening phase is a clean
index-order sweep over distinct arms -- no-replacement coverage, which
uniform-with-replacement sampling cannot match.

:class:`UniformPolicy` is the seeded uniform-random baseline the
benchmark compares against.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np


class LinUCB:
    """Disjoint LinUCB with a shared ridge model over arm contexts."""

    def __init__(self, dim: int, alpha: float = 1.0,
                 lam: float = 1.0) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self.alpha = float(alpha)
        self.A = lam * np.eye(dim)
        self.b = np.zeros(dim)

    def scores(self, contexts: Sequence[Sequence[float]]) -> list[float]:
        """UCB score per context (exploit mean + alpha * uncertainty)."""
        A_inv = np.linalg.inv(self.A)
        theta = A_inv @ self.b
        out = []
        for ctx in contexts:
            x = np.asarray(ctx, dtype=float)
            width = float(np.sqrt(max(0.0, x @ A_inv @ x)))
            out.append(float(theta @ x) + self.alpha * width)
        return out

    def select(self, contexts: Sequence[Sequence[float]]) -> int:
        """Arm index with the highest UCB; ties -> lowest index."""
        scores = self.scores(contexts)
        best = 0
        for i, s in enumerate(scores):
            if s > scores[best] + 1e-12:
                best = i
        return best

    def update(self, context: Sequence[float], reward: float) -> None:
        x = np.asarray(context, dtype=float)
        self.A += np.outer(x, x)
        self.b += reward * x


class UniformPolicy:
    """Seeded uniform-random arm choice (the benchmark baseline)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def select(self, contexts: Sequence[Sequence[float]]) -> int:
        return self._rng.randrange(len(contexts))

    def update(self, context: Sequence[float], reward: float) -> None:
        pass
