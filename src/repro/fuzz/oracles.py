"""Differential oracles: run one design through configuration pairs.

An oracle is a named list of **legs** -- module-level picklable
functions plus arguments -- whose canonical (JSON-able, deterministic)
results must agree.  The campaign runs each leg either in-process or in
a sacrificial one-worker pool with a hard timeout (reusing
:func:`repro.flow.resilience.kill_pool`), so a configuration that hangs
or SIGKILLs becomes a classified *finding* instead of a stuck campaign:

======================  ==================================================
outcome                  meaning
======================  ==================================================
``match``                every leg produced the identical structure
``divergence``           two legs disagreed (the real fuzzing payoff)
``crash``                a leg raised / its worker died
``hang``                 a leg exceeded the per-leg timeout
======================  ==================================================

The differential pairs mirror every backend pair the repository ships:
``backend`` (kernel vs interpreter detection cycles), ``shards``
(serial vs fault-parallel), ``transport`` (shm vs pickle shard
payloads), ``collapse`` (representatives-expanded vs full universe),
``atpg`` (reference vs event-driven PODEM classification), ``guidance``
(SCOAP-guided vs unguided classification), ``atpg_vs_sim`` (a PODEM
"detected" vector must actually detect under fault simulation), and
``batch`` (fused block-diagonal vs per-design serial), plus ``bist``
attribution (kernel vs interpreter) on MISR-wrapped specs.

:data:`INJECTED_BUGS` holds deliberately broken predicates used by the
benchmark harness and the minimizer acceptance tests -- they fabricate
a divergence on structurally identifiable designs so bandit learning
and delta-debugging can be validated without a real bug in the tree.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.gatelevel.gates import Netlist

from repro.fuzz.generator import DesignSpec

#: default hard per-leg timeout (seconds); the ``REPRO_FUZZ_TIMEOUT``
#: knob and the campaign ``--timeout`` flag override it.
TIMEOUT_ENV = "REPRO_FUZZ_TIMEOUT"
EXEC_ENV = "REPRO_FUZZ_EXEC"
DEFAULT_TIMEOUT = 30.0

_EXEC_CHOICES = {"pool": (), "inproc": ("in-process", "serial")}


def resolve_timeout(timeout: float | None = None) -> float:
    from repro.knobs import coerce_float, env_float

    if timeout is None:
        return env_float(TIMEOUT_ENV, DEFAULT_TIMEOUT, minimum=0.1)
    return coerce_float(timeout, "timeout", minimum=0.1)


def resolve_exec_mode(mode: str | None = None) -> str:
    from repro.knobs import env_choice, normalize_choice

    if mode is None:
        return env_choice(EXEC_ENV, "pool", _EXEC_CHOICES)
    return normalize_choice(mode, "exec_mode", _EXEC_CHOICES)


# ---------------------------------------------------------------------------
# canonical leg functions (module-level: picklable into worker pools)

@contextmanager
def _env(overrides: dict[str, str] | None) -> Iterator[None]:
    """Apply environment overrides for the duration of one leg."""
    if not overrides:
        yield
        return
    saved = {k: os.environ.get(k) for k in overrides}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _leg_faultsim(arg) -> list[list]:
    """fault -> first detecting cycle, canonicalised."""
    netlist, faults, seq, width, kw, env = arg
    from repro.gatelevel.fault_sim import fault_simulate_cycles

    with _env(env):
        res = fault_simulate_cycles(
            netlist, faults, seq, width=width, **kw
        )
    return [
        [f.net, f.stuck_at, -1 if res[f] is None else res[f]]
        for f in faults
    ]


def _leg_atpg(arg) -> list[list]:
    """Per-fault PODEM classification (det / unt / abort)."""
    netlist, faults, backtrack_limit, kw = arg
    from repro.gatelevel.atpg import combinational_atpg

    out = []
    for f in faults:
        r = combinational_atpg(
            netlist, f, backtrack_limit=backtrack_limit, **kw
        )
        cls = "det" if r.detected else ("abort" if r.aborted else "unt")
        out.append([f.net, f.stuck_at, cls])
    return out


def _leg_atpg_vs_sim(arg) -> list[list]:
    """Cross-engine consistency: a PODEM 'detected' vector must detect.

    Returns the list of faults whose completed vector fails to detect
    under single-cycle fault simulation -- expected empty; any entry is
    a divergence between the ATPG and fault-simulation engines.
    """
    netlist, faults, backtrack_limit, backend = arg
    from repro.gatelevel.atpg import combinational_atpg
    from repro.gatelevel.fault_sim import fault_simulate

    scan_names = {g.name for g in netlist.scan_dffs()}
    missed = []
    for f in faults:
        r = combinational_atpg(netlist, f, backtrack_limit=backtrack_limit)
        if not r.detected or r.test is None:
            continue
        vec = {pi: 0 for pi in netlist.inputs()}
        for g in netlist.scan_dffs():
            vec.setdefault(g.name, 0)
        vec.update(r.test)
        piv = {k: v for k, v in vec.items() if k not in scan_names}
        state = {k: v for k, v in vec.items() if k in scan_names}
        det = fault_simulate(
            netlist, [f], [piv], width=1, initial_state=state,
            backend=backend, collapse=False,
        )
        if not det[f]:
            missed.append([f.net, f.stuck_at])
    return missed


def _leg_const(arg) -> Any:
    """A constant leg: the expected value of a self-consistency oracle."""
    return arg


def _leg_bist(arg) -> list[list]:
    """fault -> (session, checkpoint) attribution, canonicalised."""
    netlist, faults, cycles, kw, env = arg
    from repro.gatelevel.bist_session import bist_fault_attribution
    from repro.gatelevel.genscale import bist_wrap

    hardware = bist_wrap(netlist)
    with _env(env):
        res = bist_fault_attribution(
            hardware, sessions=[["u0"]], cycles=cycles, faults=faults,
            **kw,
        )
    return [
        [f.net, f.stuck_at,
         *(res[f] if res[f] is not None else (-1, -1))]
        for f in faults
    ]


def _leg_batch(arg) -> list[list]:
    """Two-job fault simulation, fused or serial, canonicalised."""
    netlist, faults_a, faults_b, seq, width, batch = arg
    from repro.gatelevel.batch import SimJob, fault_simulate_many

    jobs = [
        SimJob(netlist, faults_a, seq, width=width),
        SimJob(netlist, faults_b, seq, width=width),
    ]
    results = fault_simulate_many(
        jobs, backend="kernel", shards=1, batch=batch, collapse=False
    )
    out = []
    for job, res in zip(jobs, results):
        out.append([
            [f.net, f.stuck_at, -1 if res[f] is None else res[f]]
            for f in job.faults
        ])
    return out


# ---------------------------------------------------------------------------
# oracle registry

@dataclass(frozen=True)
class Leg:
    label: str
    fn: Callable[[Any], Any]
    arg: Any


@dataclass(frozen=True)
class OracleDef:
    """A named differential check; ``build_legs`` returns ``None`` when
    the oracle does not apply to the given spec.  ``comparator``
    (default :func:`compare_legs`, exact structural equality) lets
    classification oracles treat budget-dependent results as
    compatible."""

    name: str
    build_legs: Callable[..., "list[Leg] | None"]
    comparator: "Callable[[Sequence[str], Sequence[Any]], dict | None]" \
        | None = None


def _simkw(backend: str = "kernel", shards: int = 1,
           collapse: bool = False) -> dict:
    return {"backend": backend, "shards": shards, "collapse": collapse}


def _o_backend(netlist, spec, options) -> list[Leg] | None:
    faults = spec.faults(netlist)
    seq = spec.patterns(netlist)
    return [
        Leg("backend=kernel", _leg_faultsim,
            (netlist, faults, seq, spec.width, _simkw("kernel"), None)),
        Leg("backend=interp", _leg_faultsim,
            (netlist, faults, seq, spec.width, _simkw("interp"), None)),
    ]


def _o_shards(netlist, spec, options) -> list[Leg] | None:
    faults = spec.faults(netlist)
    if len(faults) < 32:  # below 2*MIN_FAULTS_PER_SHARD nothing shards
        return None
    seq = spec.patterns(netlist)
    legs = [
        Leg("shards=1", _leg_faultsim,
            (netlist, faults, seq, spec.width, _simkw(), None)),
    ]
    for s in options.get("shards", (2,)):
        if s > 1:
            legs.append(Leg(
                f"shards={s}", _leg_faultsim,
                (netlist, faults, seq, spec.width,
                 _simkw(shards=s), None),
            ))
    return legs if len(legs) > 1 else None


def _o_transport(netlist, spec, options) -> list[Leg] | None:
    faults = spec.faults(netlist)
    if len(faults) < 32:
        return None
    transports = options.get("transports", ("shm", "pickle"))
    if len(transports) < 2:
        return None
    seq = spec.patterns(netlist)
    return [
        Leg(f"transport={t}", _leg_faultsim,
            (netlist, faults, seq, spec.width, _simkw(shards=2),
             {"REPRO_SHARD_TRANSPORT": t}))
        for t in transports
    ]


def _o_collapse(netlist, spec, options) -> list[Leg] | None:
    faults = spec.faults(netlist)
    seq = spec.patterns(netlist)
    return [
        Leg("collapse=off", _leg_faultsim,
            (netlist, faults, seq, spec.width, _simkw(), None)),
        Leg("collapse=on", _leg_faultsim,
            (netlist, faults, seq, spec.width,
             {"backend": "kernel", "shards": 1, "collapse": True},
             None)),
    ]


def _atpg_faults(netlist, spec):
    """A small hard-ish sample for the per-fault PODEM oracles."""
    faults = spec.faults(netlist)
    return faults[:max(8, min(12, len(faults)))]


def _o_atpg(netlist, spec, options) -> list[Leg] | None:
    faults = _atpg_faults(netlist, spec)
    return [
        Leg("atpg=reference", _leg_atpg,
            (netlist, faults, 200,
             {"backend": "reference", "guidance": False})),
        Leg("atpg=event", _leg_atpg,
            (netlist, faults, 200,
             {"backend": "event", "guidance": False})),
    ]


def _o_guidance(netlist, spec, options) -> list[Leg] | None:
    faults = _atpg_faults(netlist, spec)
    return [
        Leg("guidance=off", _leg_atpg,
            (netlist, faults, 200,
             {"backend": "event", "guidance": False})),
        Leg("guidance=on", _leg_atpg,
            (netlist, faults, 200,
             {"backend": "event", "guidance": True})),
    ]


def _o_atpg_vs_sim(netlist, spec, options) -> list[Leg] | None:
    faults = _atpg_faults(netlist, spec)
    return [
        Leg("expect=[]", _leg_const, []),
        Leg("podem-vectors-detect", _leg_atpg_vs_sim,
            (netlist, faults, 200, "kernel")),
    ]


def _o_batch(netlist, spec, options) -> list[Leg] | None:
    from repro.gatelevel.genscale import sample_faults

    faults_a = spec.faults(netlist)
    faults_b = sample_faults(netlist, spec.n_faults,
                             seed=spec.seed + 1)
    seq = spec.patterns(netlist)
    return [
        Leg("batch=serial", _leg_batch,
            (netlist, faults_a, faults_b, seq, spec.width, False)),
        Leg("batch=fused", _leg_batch,
            (netlist, faults_a, faults_b, seq, spec.width, True)),
    ]


def _o_bist(netlist, spec, options) -> list[Leg] | None:
    if not spec.bist:
        return None
    faults = spec.faults(netlist)[:24]
    cycles = 12
    kw = {"collapse": False}
    return [
        Leg("bist=kernel", _leg_bist,
            (netlist, faults, cycles,
             dict(kw, backend="kernel"), None)),
        Leg("bist=interp", _leg_bist,
            (netlist, faults, cycles,
             dict(kw, backend="interp"), None)),
    ]


def compare_classifications(labels: Sequence[str],
                            results: Sequence[Any]) -> dict | None:
    """Soundness-only comparison of per-fault PODEM classifications.

    A fixed backtrack budget cuts the search at a different frontier
    under different decision orderings (guided vs unguided, reference
    vs event-driven), so ``abort`` legitimately pairs with anything.
    Only ``det`` vs ``unt`` -- one engine proves a test exists, the
    other proves it cannot -- is a divergence.
    """
    base = results[0]
    for label, res in zip(labels[1:], results[1:]):
        if len(base) != len(res):
            return {"legs": [labels[0], label],
                    "diff": f"$: length {len(base)} != {len(res)}"}
        for i, (a, b) in enumerate(zip(base, res)):
            if a[:2] != b[:2]:
                return {"legs": [labels[0], label],
                        "diff": f"$[{i}]: fault {a[:2]} != {b[:2]}"}
            if {a[2], b[2]} == {"det", "unt"}:
                return {
                    "legs": [labels[0], label],
                    "diff": (f"$[{i}]: fault {a[0]}/sa{a[1]} "
                             f"{a[2]!r} != {b[2]!r}"),
                }
    return None


ORACLES: dict[str, OracleDef] = {
    "backend": OracleDef("backend", _o_backend),
    "shards": OracleDef("shards", _o_shards),
    "transport": OracleDef("transport", _o_transport),
    "collapse": OracleDef("collapse", _o_collapse),
    "atpg": OracleDef("atpg", _o_atpg,
                      comparator=compare_classifications),
    "guidance": OracleDef("guidance", _o_guidance,
                          comparator=compare_classifications),
    "atpg_vs_sim": OracleDef("atpg_vs_sim", _o_atpg_vs_sim),
    "batch": OracleDef("batch", _o_batch),
    "bist": OracleDef("bist", _o_bist),
}


# ---------------------------------------------------------------------------
# structural comparison

def first_difference(a: Any, b: Any, path: str = "$") -> str | None:
    """Human-readable locator of the first structural difference."""
    if type(a) is not type(b):
        return f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, list):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            diff = first_difference(x, y, f"{path}[{i}]")
            if diff:
                return diff
        return None
    if isinstance(a, dict):
        if sorted(a) != sorted(b):
            return f"{path}: keys differ"
        for k in sorted(a):
            diff = first_difference(a[k], b[k], f"{path}.{k}")
            if diff:
                return diff
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


def compare_legs(labels: Sequence[str],
                 results: Sequence[Any]) -> dict | None:
    """``None`` on agreement, else a JSON-able divergence detail."""
    base = results[0]
    for label, res in zip(labels[1:], results[1:]):
        diff = first_difference(base, res)
        if diff:
            return {
                "legs": [labels[0], label],
                "diff": diff[:400],
            }
    return None


# ---------------------------------------------------------------------------
# leg execution (in-process or hang-safe worker pool)

def _call_leg(payload):
    fn, arg = payload
    return fn(arg)


class LegRunner:
    """Runs oracle legs, classifying crash and hang outcomes.

    ``pool`` mode keeps one sacrificial worker process alive and gives
    every leg a hard deadline: on timeout the pool is killed with
    :func:`repro.flow.resilience.kill_pool` (no orphaned runaway
    worker) and the leg is reported as a ``hang``; a worker that dies
    (OOM, SIGKILL) is a ``crash``.  ``inproc`` mode trades hang
    protection for speed -- the minimizer's many re-checks use it.
    """

    def __init__(self, mode: str | None = None,
                 timeout: float | None = None) -> None:
        self.mode = resolve_exec_mode(mode)
        self.timeout = resolve_timeout(timeout)
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    # -- lifecycle ------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=1
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            from repro.flow.resilience import kill_pool

            kill_pool(self._pool)
            self._pool = None

    def __enter__(self) -> "LegRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ------------------------------------------------------

    def run(self, leg: Leg) -> tuple[str, Any]:
        """``("ok", value)`` / ``("crash", repr)`` / ``("hang", secs)``."""
        if self.mode == "inproc":
            try:
                return "ok", leg.fn(leg.arg)
            except Exception as exc:
                return "crash", repr(exc)
        from repro.flow.resilience import kill_pool

        t0 = time.monotonic()
        try:
            pool = self._ensure_pool()
            fut = pool.submit(_call_leg, (leg.fn, leg.arg))
        except (OSError, PermissionError):
            # Pools unavailable (sandbox): degrade to in-process.
            self.mode = "inproc"
            return self.run(leg)
        try:
            return "ok", fut.result(timeout=self.timeout)
        except concurrent.futures.TimeoutError:
            kill_pool(self._pool)
            self._pool = None
            return "hang", round(time.monotonic() - t0, 2)
        except concurrent.futures.BrokenExecutor:
            kill_pool(self._pool)
            self._pool = None
            return "crash", "worker process died (broken pool)"
        except Exception as exc:
            return "crash", repr(exc)


def run_oracle(
    oracle: OracleDef,
    netlist: Netlist,
    spec: DesignSpec,
    runner: LegRunner,
    options: dict | None = None,
) -> dict | None:
    """Run one oracle; ``None`` on match / n-a, else a finding dict."""
    legs = oracle.build_legs(netlist, spec, options or {})
    if not legs:
        return None
    labels = [leg.label for leg in legs]
    results = []
    for leg in legs:
        status, value = runner.run(leg)
        if status != "ok":
            return {
                "oracle": oracle.name,
                "outcome": status,
                "detail": {"leg": leg.label, "info": value},
            }
        results.append(value)
    detail = (oracle.comparator or compare_legs)(labels, results)
    if detail:
        return {
            "oracle": oracle.name,
            "outcome": "divergence",
            "detail": detail,
        }
    return None


def check_oracle(
    name: str,
    netlist: Netlist,
    spec: DesignSpec,
    timeout: float | None = None,
    options: dict | None = None,
) -> dict | None:
    """One-shot in-process oracle check (minimizer and emitted repros).

    Returns ``None`` when every configuration pair agrees on
    ``netlist``, else the finding dict of the first disagreement.
    """
    with LegRunner(mode="inproc", timeout=timeout) as runner:
        return run_oracle(ORACLES[name], netlist, spec, runner,
                          options=options)


# ---------------------------------------------------------------------------
# injected bugs (benchmark harness + minimizer validation)

def _kinds(netlist: Netlist) -> set[str]:
    return {g.kind for g in netlist}


def _has_noscan_state(netlist: Netlist) -> bool:
    """Unscanned sequential state outside the MISR (``sr0*``)."""
    return any(
        not g.scan and not g.name.startswith("sr0")
        for g in netlist.dffs()
    )


def _bug_xnor_noscan(netlist: Netlist, spec: DesignSpec) -> bool:
    """xnor logic with no nands, over unscanned state -- the signature
    of an xor_heavy cloud on the noscan profile.  Presence/absence (not
    fractions) so gate-dropping reductions preserve the predicate."""
    kinds = _kinds(netlist)
    return ("xnor" in kinds and "nand" not in kinds
            and _has_noscan_state(netlist))


def _bug_nand_noscan(netlist: Netlist, spec: DesignSpec) -> bool:
    """nand/nor-only logic (no and/or), over unscanned state -- the
    inverting mix on the noscan profile."""
    kinds = _kinds(netlist)
    return ("nand" in kinds and "and" not in kinds
            and "or" not in kinds and _has_noscan_state(netlist))


def _bug_buf_bist(netlist: Netlist, spec: DesignSpec) -> bool:
    """Buffer chains under a MISR wrap (buffered x bist)."""
    return "bist_en" in netlist.gates and "buf" in _kinds(netlist)


#: name -> predicate(netlist, spec).  Each fabricates a divergence on a
#: *conjunction* of structural features -- an extreme corner of the
#: generator space, the shape real tool bugs cluster in -- so the
#: region is sparse at the arm level (uniform sampling is slow to hit
#: it), learnable by the bandit's feature model, and preservable by the
#: minimizer down to a couple of gates.
INJECTED_BUGS: dict[str, Callable[[Netlist, DesignSpec], bool]] = {
    "xnor_noscan": _bug_xnor_noscan,
    "nand_noscan": _bug_nand_noscan,
    "buf_bist": _bug_buf_bist,
}


def injected_divergence(
    bug: str, netlist: Netlist, spec: DesignSpec
) -> dict | None:
    """The synthetic finding the injected-bug harness produces."""
    if INJECTED_BUGS[bug](netlist, spec):
        return {
            "oracle": f"injected:{bug}",
            "outcome": "divergence",
            "detail": {"legs": ["real", f"injected:{bug}"],
                       "diff": "synthetic divergence (injected bug)"},
        }
    return None
