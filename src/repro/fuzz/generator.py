"""Feature-parameterised design generation for the fuzzing campaign.

A :class:`DesignSpec` is a *reproducible* recipe: the same spec builds
the same netlist on any platform (it drives
:func:`repro.gatelevel.genscale.generate_netlist`, which is seeded by
one ``random.Random``).  Its fields are the campaign's degrees of
freedom -- operator mix, fanout/reconvergence profile, DFF-feedback
shape, scan/BIST wrapping, pattern pack width, size -- and its
normalised feature vector is exactly the context the LinUCB bandit
scores, so "steer generation toward feature regions that historically
diverged" needs no translation layer.

An :class:`Arm` is the discretised region the bandit chooses between:
a spec shape with the per-trial seed left open.  Per-trial diversity
inside an arm (pack width, fanin window, pool cadence) is derived
deterministically from the trial seed, so a journal entry's spec dict
is always enough to rebuild the exact design.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Mapping

from repro.gatelevel.gates import Netlist

#: named operator mixes: weighted gate-kind pools for the cloud, plus
#: the terminal buf/not chain probability ("buffered" models a
#: technology mapper's buffer trees).
OP_MIXES: dict[str, tuple[tuple[str, ...], float]] = {
    "balanced": (
        ("and", "or", "xor", "xor", "nand", "nand", "nor", "xnor",
         "not"),
        0.0,
    ),
    "and_or": (
        ("and", "and", "or", "or", "nand", "nor", "not", "not"),
        0.0,
    ),
    "xor_heavy": (
        ("xor", "xor", "xnor", "xnor", "and", "or", "not"),
        0.0,
    ),
    "inverting": (
        ("nand", "nand", "nor", "nor", "not", "not", "xor"),
        0.0,
    ),
    "buffered": (
        ("and", "or", "xor", "xor", "nand", "nand", "nor", "xnor",
         "not"),
        0.25,
    ),
}

#: state/wrapping profiles: (name, dff_ratio, scan, bist)
PROFILES: tuple[tuple[str, float, bool, bool], ...] = (
    ("comb", 0.0, True, False),
    ("scan", 0.15, True, False),
    ("noscan", 0.15, False, False),
    ("bist", 0.12, True, True),
)

#: per-trial derived diversity (deterministic in the spec seed).
_WIDTHS = (1, 8, 32, 64)
_WINDOWS = (6, 24, 48)
_POOL_EVERY = (3, 8, 20)

#: MISR bits for BIST-wrapped specs.
SIGNATURE_BITS = 8


@dataclass(frozen=True)
class DesignSpec:
    """One concrete generated design plus its oracle workload knobs."""

    n_gates: int
    seed: int
    op_mix: str = "balanced"
    profile: str = "scan"
    dff_ratio: float = 0.15
    scan: bool = True
    bist: bool = False
    window: int = 24
    pool_every: int = 8
    width: int = 64
    n_cycles: int = 3
    n_faults: int = 48

    def __post_init__(self) -> None:
        if self.op_mix not in OP_MIXES:
            raise ValueError(
                f"unknown op_mix {self.op_mix!r}; "
                f"pick from {sorted(OP_MIXES)}"
            )
        if not 1 <= self.width <= 64:
            raise ValueError(f"width must be in 1..64, got {self.width}")

    # ------------------------------------------------------------------

    def build(self) -> Netlist:
        """The (deterministic) netlist this spec describes."""
        from repro.gatelevel import genscale

        kinds, buf_ratio = OP_MIXES[self.op_mix]
        return genscale.generate_netlist(
            self.n_gates,
            seed=self.seed,
            dff_ratio=self.dff_ratio,
            scan=self.scan,
            signature_bits=SIGNATURE_BITS if self.bist else 0,
            buf_ratio=buf_ratio,
            kind_pool=kinds,
            window=self.window,
            pool_every=self.pool_every,
            name=f"fuzz_{self.op_mix}_{self.profile}"
                 f"_g{self.n_gates}_s{self.seed}",
        )

    def faults(self, netlist: Netlist):
        """The deterministic fault sample the oracles simulate."""
        from repro.gatelevel.genscale import sample_faults

        return sample_faults(netlist, self.n_faults, seed=self.seed)

    def patterns(self, netlist: Netlist):
        """``n_cycles`` packed PI assignments at this spec's width."""
        from repro.gatelevel.genscale import random_patterns

        return random_patterns(
            netlist, self.n_cycles, seed=self.seed, width=self.width
        )

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "DesignSpec":
        return cls(**dict(data))


@dataclass(frozen=True)
class Arm:
    """A bandit arm: a feature region of the generator space.

    ``spec(trial_seed)`` instantiates a concrete :class:`DesignSpec`;
    the per-trial knobs (pack width, fanin window, pool cadence) cycle
    deterministically through their ranges so one arm still produces
    structurally varied designs trial over trial.
    """

    index: int
    op_mix: str
    n_gates: int
    profile: str
    dff_ratio: float
    scan: bool
    bist: bool

    def spec(self, trial_seed: int) -> DesignSpec:
        return DesignSpec(
            n_gates=self.n_gates,
            seed=trial_seed,
            op_mix=self.op_mix,
            profile=self.profile,
            dff_ratio=self.dff_ratio,
            scan=self.scan,
            bist=self.bist,
            window=_WINDOWS[trial_seed % len(_WINDOWS)],
            pool_every=_POOL_EVERY[trial_seed % len(_POOL_EVERY)],
            width=_WIDTHS[trial_seed % len(_WIDTHS)],
            n_cycles=2 + trial_seed % 3,
            n_faults=max(40, min(64, self.n_gates // 8)),
        )

    def features(self) -> tuple[float, ...]:
        """L2-normalised context vector for the LinUCB bandit.

        Dimensions: bias, log-size, one feature per operator mix
        (one-hot), dff ratio, scan, bist.  Normalising to unit length
        makes the initial exploration (zero reward everywhere) a clean
        index-order sweep over distinct arms instead of a
        feature-norm-ordered one.
        """
        mixes = sorted(OP_MIXES)
        raw = [
            1.0,
            math.log10(max(10, self.n_gates)) / 4.0,
            *(1.0 if self.op_mix == m else 0.0 for m in mixes),
            self.dff_ratio * 4.0,
            1.0 if self.scan else 0.0,
            1.0 if self.bist else 0.0,
        ]
        norm = math.sqrt(sum(v * v for v in raw))
        return tuple(v / norm for v in raw)

    def label(self) -> str:
        return f"{self.op_mix}/{self.profile}/g{self.n_gates}"
