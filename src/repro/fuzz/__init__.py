"""Bandit-guided differential fuzzing over the whole testability stack.

Every accelerated path this repository ships -- compiled kernel vs
reference interpreter, sharded vs serial, shm vs pickle transport,
collapsed vs full fault universe, guided vs unguided PODEM, fused-batch
vs per-design -- promises byte-identical results.  The seed designs
exercise those promises on seven netlists; this subsystem exercises
them on *thousands* of structurally diverse generated designs:

* :mod:`repro.fuzz.generator` -- a seeded, feature-parameterised
  :class:`DesignSpec` built on :mod:`repro.gatelevel.genscale`, whose
  feature vector doubles as the bandit context;
* :mod:`repro.fuzz.oracles` -- differential oracles running each
  design through configuration pairs and comparing detection masks,
  coverage, PODEM classifications, and BIST attributions structurally;
* :mod:`repro.fuzz.bandit` -- a LinUCB contextual bandit (pure numpy)
  steering generation toward feature regions that historically
  produced non-match outcomes;
* :mod:`repro.fuzz.campaign` -- the crash-safe campaign driver
  (append-only JSONL journal, deterministic ``--resume``);
* :mod:`repro.fuzz.minimize` -- delta-debugging reduction of any
  divergent design to a minimal reproducer emitted as a runnable
  pytest file under ``tests/repros/``.

Run it: ``python -m repro.fuzz --trials 50`` (see ``--help``), or the
registered ``fuzz_smoke`` flow.
"""

from __future__ import annotations

from repro.fuzz.bandit import LinUCB, UniformPolicy
from repro.fuzz.campaign import (
    CampaignConfig,
    build_arms,
    run_campaign,
)
from repro.fuzz.generator import Arm, DesignSpec
from repro.fuzz.minimize import minimize_netlist, reduce_netlist
from repro.fuzz.oracles import (
    INJECTED_BUGS,
    ORACLES,
    check_oracle,
    injected_divergence,
)

__all__ = [
    "Arm",
    "CampaignConfig",
    "DesignSpec",
    "INJECTED_BUGS",
    "LinUCB",
    "ORACLES",
    "UniformPolicy",
    "build_arms",
    "check_oracle",
    "injected_divergence",
    "minimize_netlist",
    "reduce_netlist",
    "run_campaign",
]
