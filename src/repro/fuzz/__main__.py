"""``python -m repro.fuzz`` -- run a differential fuzzing campaign.

Exit codes: 0 clean campaign (every trial matched), 1 findings
(divergence / crash / hang -- details in the journal), 2 usage error.
"""

from __future__ import annotations

import argparse
import sys

from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.fuzz.oracles import INJECTED_BUGS, ORACLES


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description=(
            "Bandit-guided differential fuzzing over the testability "
            "stack: generated designs through configuration pairs, "
            "divergences minimized to pytest reproducers."
        ),
    )
    p.add_argument("--trials", type=int, default=50,
                   help="trial budget (default 50)")
    p.add_argument("--seconds", type=float, default=None,
                   help="wall-clock budget; stops early when exceeded")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default 0)")
    p.add_argument("--journal", default="fuzz_journal.jsonl",
                   help="append-only JSONL journal path")
    p.add_argument("--resume", action="store_true",
                   help="continue a killed campaign from its journal")
    p.add_argument("--policy", choices=("linucb", "uniform"),
                   default="linucb",
                   help="arm-selection policy (default linucb)")
    p.add_argument("--alpha", type=float, default=1.2,
                   help="LinUCB exploration weight (default 1.2)")
    p.add_argument("--max-gates", type=int, default=1500,
                   help="largest size bucket in the arm grid")
    p.add_argument("--shards", default="2",
                   help="comma list of shard counts the shards oracle "
                        "compares against serial (default: 2)")
    p.add_argument("--transports", default="shm,pickle",
                   help="comma list for the transport oracle "
                        "(default: shm,pickle)")
    p.add_argument("--oracles", default=None,
                   help=f"comma list of oracles to run "
                        f"(default: all of {','.join(ORACLES)})")
    p.add_argument("--inject", default=None,
                   choices=sorted(INJECTED_BUGS),
                   help="run the injected-bug harness instead of real "
                        "oracles (benchmark / self-test mode)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-leg hang deadline in seconds "
                        "(default: REPRO_FUZZ_TIMEOUT or 30)")
    p.add_argument("--exec", dest="exec_mode",
                   choices=("pool", "inproc"), default=None,
                   help="leg execution mode (default: REPRO_FUZZ_EXEC "
                        "or pool)")
    p.add_argument("--repro-dir", default="tests/repros",
                   help="directory for emitted pytest reproducers")
    p.add_argument("--no-minimize", action="store_true",
                   help="skip delta-debugging of divergent designs")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-trial progress lines")
    return p


def _csv_ints(raw: str) -> tuple[int, ...]:
    return tuple(int(x) for x in raw.split(",") if x.strip())


def _csv(raw: str) -> tuple[str, ...]:
    return tuple(x.strip() for x in raw.split(",") if x.strip())


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        oracles = _csv(args.oracles) if args.oracles else None
        if oracles:
            for name in oracles:
                if name not in ORACLES:
                    raise ValueError(
                        f"unknown oracle {name!r}; "
                        f"pick from {','.join(ORACLES)}"
                    )
        config = CampaignConfig(
            seed=args.seed,
            trials=args.trials,
            seconds=args.seconds,
            policy=args.policy,
            alpha=args.alpha,
            max_gates=args.max_gates,
            shards=_csv_ints(args.shards),
            transports=_csv(args.transports),
            oracles=oracles,
            inject=args.inject,
            timeout=args.timeout,
            exec_mode=args.exec_mode,
            journal=args.journal,
            repro_dir=args.repro_dir,
            minimize=not args.no_minimize,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    say = (lambda msg: None) if args.quiet else print
    try:
        summary = run_campaign(config, resume=args.resume, log=say)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    out = summary["outcomes"]
    n_bad = out["divergence"] + out["crash"] + out["hang"]
    print(
        f"campaign: {summary['trials']} trials over "
        f"{summary['arms']} arms ({summary['policy']}), "
        f"{out['match']} match / {out['divergence']} divergence / "
        f"{out['crash']} crash / {out['hang']} hang "
        f"[{summary['trials_per_min']} trials/min] "
        f"-> {summary['journal']}"
    )
    for f in summary["findings"]:
        line = f"  finding: {f['oracle']} -> {f['outcome']}"
        if f.get("repro"):
            line += (f" (minimized {f['orig_gates']} -> "
                     f"{f['min_gates']} gates: {f['repro']})")
        print(line)
    return 1 if n_bad else 0


if __name__ == "__main__":
    sys.exit(main())
