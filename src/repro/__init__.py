"""repro: high-level synthesis for testability.

A complete, executable reproduction of the system space surveyed by
Wagner & Dey, "High-Level Synthesis for Testability: A Survey and
Perspective" (DAC 1996).

Subpackages
-----------

* :mod:`repro.cdfg` -- control-data flow graphs, behavioral benchmarks,
  behavioral transformations for testability, an interpreter.
* :mod:`repro.hls` -- allocation, scheduling, binding, data-path and
  controller construction, area estimation.
* :mod:`repro.sgraph` -- S-graph analysis: loops, sequential depth,
  MFVS, the empirical sequential-ATPG cost model.
* :mod:`repro.scan` -- partial-scan synthesis: CDFG scan selection,
  boundary variables, I/O-register maximisation, loop-aware
  simultaneous scheduling/assignment, gate-level MFVS baseline, RTL
  partial scan with transparent scan registers.
* :mod:`repro.bist` -- BIST synthesis: BILBO/CBILBO models,
  self-adjacency minimisation, TFB/XTFB architectures, TPGR/SR
  sharing, test sessions, arithmetic BIST, test behavior.
* :mod:`repro.gatelevel` -- bit-level expansion, stuck-at faults,
  PODEM, time-frame sequential ATPG, fault simulation, pseudorandom
  BIST coverage.
* :mod:`repro.controller_dft` -- controller implication analysis and
  extra-test-vector redesign.
* :mod:`repro.rtl` -- RTL testability ranges, k-level test points,
  full-scan reports.
* :mod:`repro.hier` -- test environments, ATKET-style extraction,
  module-test composition.
* :mod:`repro.survey` -- Table 1, Figure 1, and the technique taxonomy
  of the survey itself.

Quick start::

    from repro.cdfg import suite
    from repro import hls, scan, sgraph

    cdfg = suite.iir_biquad(2)
    alloc = hls.allocate_for_latency(cdfg, 20)
    dp, plan = scan.loop_aware_synthesis(cdfg, alloc)
    print(sgraph.estimate_cost(sgraph.build_sgraph(dp)))
"""

__version__ = "1.0.0"
