"""ATKET-style module environment extraction and behavioral
modification ([37,39,7], survey sections 3.4 and 6).

"The test environment of an operation assigned to a module can be used
as the test environment for the module.  The assignment phase in high
level synthesis is used to help ensure that each module has at least
one operation which has a test environment; if that is not possible,
test points are introduced to provide the test environment."
"""

from __future__ import annotations

from repro.cdfg.graph import CDFG
from repro.cdfg.transform import insert_test_statements
from repro.hier.test_env import TestEnvironment, operation_test_environment
from repro.hls.allocation import Allocation, AllocationError
from repro.hls.binding import FUBinding
from repro.hls.scheduling import Schedule


def module_test_environments(
    cdfg: CDFG, binding: FUBinding
) -> dict[str, TestEnvironment | None]:
    """Per unit: a verified test environment from one of its operations
    (None when no operation on the unit has one)."""
    out: dict[str, TestEnvironment | None] = {}
    for unit in binding.units():
        env = None
        for op_name in binding.operations_on(unit):
            env = operation_test_environment(cdfg, op_name)
            if env is not None:
                break
        out[unit] = env
    return out


def environment_aware_binding(
    cdfg: CDFG, schedule: Schedule, allocation: Allocation
) -> FUBinding:
    """Bind operations so every unit gets an environment-bearing op.

    The [7] assignment objective: operations with test environments are
    spread across the units of their class first (one per unit), then
    the rest are bound first-fit.
    """
    allocation.validate_for(cdfg)
    has_env = {
        op.name: operation_test_environment(cdfg, op.name) is not None
        for op in cdfg
    }
    busy: set[tuple[str, int]] = set()
    assignment: dict[str, str] = {}
    units_satisfied: set[str] = set()

    def place(op, unit) -> bool:
        s = schedule.step_of(op.name)
        slots = [(unit, s + d) for d in range(op.delay)]
        if any(x in busy for x in slots):
            return False
        busy.update(slots)
        assignment[op.name] = unit
        return True

    ordered = sorted(
        cdfg,
        key=lambda op: (
            not has_env[op.name],  # env-bearing ops first
            schedule.step_of(op.name),
            op.name,
        ),
    )
    for op in ordered:
        cls = allocation.unit_class(op.kind)
        names = allocation.unit_names(cls)
        if has_env[op.name]:
            # Prefer a unit of this class not yet satisfied.
            names = sorted(
                names, key=lambda u: (u in units_satisfied, u)
            )
        if not any(place(op, u) for u in names):
            raise AllocationError(
                f"environment-aware binding: no unit free for {op.name!r}"
            )
        if has_env[op.name]:
            units_satisfied.add(assignment[op.name])
    binding = FUBinding(assignment)
    binding.verify(cdfg, schedule)
    return binding


def modify_for_environments(
    cdfg: CDFG, binding: FUBinding
) -> tuple[CDFG, list[str]]:
    """Add test statements so environment-less units gain one ([39]).

    For each unit with no environment, the inputs and output of one of
    its operations get control/observe test points; returns the
    modified behavior and the units that needed modification.
    """
    envs = module_test_environments(cdfg, binding)
    needy = sorted(u for u, e in envs.items() if e is None)
    if not needy:
        return cdfg, []
    control_vars: list[str] = []
    observe_vars: list[str] = []
    for unit in needy:
        op = cdfg.operation(binding.operations_on(unit)[0])
        for v in op.inputs:
            var = cdfg.variable(v)
            if not var.is_input and v not in control_vars:
                control_vars.append(v)
        if not cdfg.variable(op.output).is_output:
            observe_vars.append(op.output)
    modified = insert_test_statements(
        cdfg, control_vars=control_vars, observe_vars=observe_vars
    )
    return modified, needy
