"""Composition of module tests into chip-level tests ([38,29]).

"Precomputed test sets of the modules can be used to generate tests for
the complete design, provided the test environment for each module is
known."  Here a module's precomputed tests are operand pairs for its
operation kind; the composer maps each pair through the module's
verified test environment into a full primary-input assignment, and
confirms by execution that the expected result is observed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cdfg.graph import CDFG
from repro.cdfg.interpret import run_iteration
from repro.hier.test_env import TestEnvironment


@dataclass(frozen=True)
class ChipLevelTest:
    """One composed test: apply ``inputs``, expect ``expected`` at
    ``observe``."""

    unit: str
    operation: str
    inputs: dict[str, int]
    observe: str
    expected: int


def exhaustive_module_tests(
    width: int, budget: int = 32, seed: int = 3
) -> list[tuple[int, int]]:
    """Precomputed operand pairs for a module: corner values plus
    pseudorandom fill, ``budget`` pairs total."""
    mask = (1 << width) - 1
    corners = [0, 1, mask, mask >> 1, 1 << (width - 1)]
    pairs = [(a, b) for a in corners for b in corners]
    rng = random.Random(seed)
    while len(pairs) < budget:
        pairs.append((rng.randrange(mask + 1), rng.randrange(mask + 1)))
    return pairs[:budget]


def compose_module_tests(
    cdfg: CDFG,
    env: TestEnvironment,
    unit: str,
    module_tests: list[tuple[int, int]],
) -> list[ChipLevelTest]:
    """Map precomputed module tests through ``env`` to chip level.

    Every composed test is verified by execution; a test environment
    that fails to deliver some operand pair raises AssertionError
    (environments are verified at extraction, so this indicates a bug,
    not a design property).
    """
    op = cdfg.operation(env.operation)
    out: list[ChipLevelTest] = []
    for a, b in module_tests:
        inputs = env.chip_inputs(cdfg, (a, b))
        values = run_iteration(cdfg, inputs)
        if values[op.inputs[0]] != a or values[op.inputs[1]] != b:
            raise AssertionError(
                f"environment for {env.operation!r} failed to justify "
                f"({a}, {b})"
            )
        out.append(
            ChipLevelTest(
                unit=unit,
                operation=env.operation,
                inputs=inputs,
                observe=env.observe,
                expected=values[env.observe],
            )
        )
    return out


def hierarchical_test_suite(
    cdfg: CDFG,
    envs: dict[str, TestEnvironment | None],
    width: int,
    budget_per_module: int = 32,
) -> tuple[list[ChipLevelTest], list[str]]:
    """Compose tests for every module with an environment.

    Returns (tests, uncovered units).
    """
    tests: list[ChipLevelTest] = []
    uncovered: list[str] = []
    for unit, env in sorted(envs.items()):
        if env is None:
            uncovered.append(unit)
            continue
        pairs = exhaustive_module_tests(width, budget_per_module)
        tests.extend(compose_module_tests(cdfg, env, unit, pairs))
    return tests, uncovered
