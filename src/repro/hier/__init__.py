"""Hierarchical test generation (survey section 6), after [7,29,37,38].

A module's *test environment* is "the set of symbolic justification and
propagation paths to and from the module": with it, precomputed module
tests can be reused at the chip level instead of regenerating them with
flat gate-level ATPG.

* :mod:`~repro.hier.test_env` -- test environments for operations
  (symbolic justification through identity operands, identity
  propagation to primary outputs), verified by execution.
* :mod:`~repro.hier.atket` -- ATKET-style extraction of per-module
  environments and the behavioral modifications needed when a module
  has none ([37,39]).
* :mod:`~repro.hier.composer` -- CHEETA-style composition of module
  test sets into chip-level tests ([38,29]).
"""

from repro.hier.test_env import (
    TestEnvironment,
    operation_test_environment,
    verify_environment,
)
from repro.hier.atket import (
    module_test_environments,
    environment_aware_binding,
    modify_for_environments,
)
from repro.hier.composer import (
    ChipLevelTest,
    compose_module_tests,
    exhaustive_module_tests,
    hierarchical_test_suite,
)
from repro.hier.system import (
    ModuleAccess,
    SystemDesign,
    flatten,
    modify_top_level,
    module_access,
)

__all__ = [
    "TestEnvironment",
    "operation_test_environment",
    "verify_environment",
    "module_test_environments",
    "environment_aware_binding",
    "modify_for_environments",
    "ChipLevelTest",
    "compose_module_tests",
    "exhaustive_module_tests",
    "hierarchical_test_suite",
    "ModuleAccess",
    "SystemDesign",
    "flatten",
    "modify_top_level",
    "module_access",
]
