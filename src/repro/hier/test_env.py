"""Test environments for operations ([7], survey section 6).

A test environment for operation ``o`` consists of

* a *justification* path per input: a chain of identity-preserving
  operations (``x+0``, ``x-0``, ``x*1``, ``x|0``, ``x^0``, ``x & mask``)
  from a primary input to the operand, with every side operand pinned
  to its identity value at a primary input;
* a *propagation* path: an identity-preserving chain from the
  operation's output to a primary output.

Environments found structurally are then *verified by execution* with
random symbolic values (the CDFG interpreter), so every returned
environment is guaranteed sound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.cdfg.graph import CDFG
from repro.cdfg.interpret import run_iteration


@dataclass(frozen=True)
class TestEnvironment:
    """A verified symbolic access path for one operation."""

    operation: str
    #: Primary input carrying each operand symbolically, per port.
    carriers: tuple[str, ...]
    #: Primary inputs pinned to constants (identity values).
    pins: Mapping[str, int]
    #: Primary output at which the operation's result appears.
    observe: str

    def chip_inputs(
        self, cdfg: CDFG, operand_values: tuple[int, ...], fill: int = 0
    ) -> dict[str, int]:
        """A full primary-input assignment applying a module test."""
        inputs = {v.name: fill for v in cdfg.primary_inputs()}
        inputs.update(self.pins)
        for pi, val in zip(self.carriers, operand_values):
            inputs[pi] = val
        return inputs


def _identity_for(kind: str, port: int, width: int) -> int | None:
    """Identity value of the *other* operand for pass-through on ``port``."""
    if kind in ("+", "|", "^"):
        return 0
    if kind == "-" and port == 0:
        return 0  # x - 0 == x; 0 - x is not identity
    if kind == "*":
        return 1
    if kind == "&":
        return (1 << width) - 1
    return None


def _justify(
    cdfg: CDFG, var: str, pins: dict[str, int], used: set[str]
) -> str | None:
    """Find a PI carrying ``var`` symbolically; fills ``pins``.

    Returns the carrier PI name or None.  Only single-use (non-fanout
    constrained) paths through identity operations are considered.
    """
    v = cdfg.variable(var)
    if v.is_input:
        if var in pins or var in used:
            return None
        used.add(var)
        return var
    op = cdfg.producer_of(var)
    if op is None:
        return None
    width = v.width
    if op.kind == "select" and len(op.inputs) == 3:
        cond = op.inputs[0]
        for port, cond_val in ((1, 1), (2, 0)):
            if not _pin(cdfg, cond, cond_val, pins, used):
                continue
            carrier = _justify(cdfg, op.inputs[port], pins, used)
            if carrier is not None:
                return carrier
            _unpin(cdfg, cond, pins)
        return None
    for port, operand in enumerate(op.inputs):
        other_port = 1 - port
        if len(op.inputs) != 2:
            break
        ident = _identity_for(op.kind, port, width)
        if ident is None:
            continue
        other = op.inputs[other_port]
        if not _pin(cdfg, other, ident, pins, used):
            continue
        carrier = _justify(cdfg, operand, pins, used)
        if carrier is not None:
            return carrier
        _unpin(cdfg, other, pins)
    return None


def _pin(
    cdfg: CDFG, var: str, value: int, pins: dict[str, int], used: set[str]
) -> bool:
    """Pin ``var`` to a constant by assigning a PI directly."""
    v = cdfg.variable(var)
    if v.is_input:
        if var in used:
            return False
        if var in pins:
            return pins[var] == value
        pins[var] = value
        return True
    return False


def _unpin(cdfg: CDFG, var: str, pins: dict[str, int]) -> None:
    pins.pop(var, None)


def _propagate(
    cdfg: CDFG, var: str, pins: dict[str, int], used: set[str]
) -> str | None:
    """Find a PO observing ``var`` through identity operations."""
    v = cdfg.variable(var)
    if v.is_output:
        return var
    for consumer in cdfg.consumers_of(var):
        if var in consumer.carried:
            continue
        if consumer.kind == "select" and len(consumer.inputs) == 3:
            cond = consumer.inputs[0]
            for port, cond_val in ((1, 1), (2, 0)):
                if consumer.inputs[port] != var or cond == var:
                    continue
                if not _pin(cdfg, cond, cond_val, pins, used):
                    continue
                po = _propagate(cdfg, consumer.output, pins, used)
                if po is not None:
                    return po
                _unpin(cdfg, cond, pins)
            continue
        if len(consumer.inputs) != 2:
            continue
        try:
            port = consumer.inputs.index(var)
        except ValueError:
            continue
        ident = _identity_for(consumer.kind, port, v.width)
        if ident is None:
            continue
        other = consumer.inputs[1 - port]
        if other == var:
            continue
        if not _pin(cdfg, other, ident, pins, used):
            continue
        po = _propagate(cdfg, consumer.output, pins, used)
        if po is not None:
            return po
        _unpin(cdfg, other, pins)
    return None


def operation_test_environment(
    cdfg: CDFG, op_name: str, verify_trials: int = 4, seed: int = 7
) -> TestEnvironment | None:
    """Search for and verify a test environment for ``op_name``."""
    op = cdfg.operation(op_name)
    if len(op.inputs) != 2 or op.carried:
        return None
    pins: dict[str, int] = {}
    used: set[str] = set()
    carrier_a = _justify(cdfg, op.inputs[0], pins, used)
    if carrier_a is None:
        return None
    carrier_b = _justify(cdfg, op.inputs[1], pins, used)
    if carrier_b is None:
        return None
    observe = _propagate(cdfg, op.output, pins, used)
    if observe is None:
        return None
    env = TestEnvironment(
        op_name, (carrier_a, carrier_b), dict(pins), observe
    )
    if verify_environment(cdfg, env, trials=verify_trials, seed=seed):
        return env
    return None


def verify_environment(
    cdfg: CDFG, env: TestEnvironment, trials: int = 4, seed: int = 7
) -> bool:
    """Execute the environment with random operand values and check the
    operands arrive unchanged and the result reaches the PO unchanged."""
    rng = random.Random(seed)
    op = cdfg.operation(env.operation)
    for _ in range(trials):
        a = rng.randrange(1 << cdfg.variable(op.inputs[0]).width)
        b = rng.randrange(1 << cdfg.variable(op.inputs[1]).width)
        inputs = env.chip_inputs(cdfg, (a, b))
        values = run_iteration(cdfg, inputs)
        if values[op.inputs[0]] != a or values[op.inputs[1]] != b:
            return False
        if values[env.observe] != values[op.output]:
            return False
    return True
