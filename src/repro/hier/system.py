"""Hierarchical designs: several behavioral modules, global test modes.

Survey section 3.4 (after [37,39]): "In hierarchical designs consisting
of several modules, the top level design constrains the controllability
and observability of its modules' I/O.  A technique has been developed
to generate top level test modes and constraints required to realize a
module's local test modes.  The process ... may reveal that some
constraints cannot be satisfied, in which case, either the top level
description, or the description of an individual module, must be
modified."

A :class:`SystemDesign` wires CDFG modules together; :func:`flatten`
produces the single executable CDFG; :func:`module_access` extracts the
*global test mode* for one module -- verified symbolic justification of
each module input from system primary inputs and propagation of a
module output to a system primary output, through the surrounding
modules; :func:`modify_top_level` applies the AMBIANT-style fix where
access is missing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cdfg.graph import CDFG, CDFGError, Operation, Variable
from repro.cdfg.transform import insert_test_statements
from repro.hier.test_env import _justify, _propagate
from repro.cdfg.interpret import run_iteration


@dataclass
class SystemDesign:
    """Named module instances plus inter-module connections.

    ``connections`` maps a (module, input-variable) pair to the
    (module, output-variable) pair driving it.  Unconnected module
    inputs become system primary inputs (named ``<mod>.<var>``);
    unconnected module outputs become system primary outputs.
    """

    name: str
    modules: dict[str, CDFG] = field(default_factory=dict)
    connections: dict[tuple[str, str], tuple[str, str]] = field(
        default_factory=dict
    )

    def add_module(self, instance: str, cdfg: CDFG) -> None:
        if instance in self.modules:
            raise CDFGError(f"duplicate module instance {instance!r}")
        self.modules[instance] = cdfg

    def connect(self, src: tuple[str, str], dst: tuple[str, str]) -> None:
        """Drive module input ``dst`` from module output ``src``."""
        sm, sv = src
        dm, dv = dst
        if not self.modules[sm].variable(sv).is_output:
            raise CDFGError(f"{sm}.{sv} is not a module output")
        if not self.modules[dm].variable(dv).is_input:
            raise CDFGError(f"{dm}.{dv} is not a module input")
        if dst in self.connections:
            raise CDFGError(f"{dm}.{dv} already driven")
        self.connections[dst] = src


def _qual(instance: str, var: str) -> str:
    return f"{instance}.{var}"


def flatten(system: SystemDesign) -> CDFG:
    """Compose the system into one CDFG with namespaced variables.

    A connected module input aliases its driver: consumers read the
    driver's qualified name directly, so no glue operations are added.
    """
    out = CDFG(system.name)
    alias: dict[str, str] = {}
    for inst, mod in system.modules.items():
        for (dm, dv), (sm, sv) in system.connections.items():
            if dm == inst:
                alias[_qual(dm, dv)] = _qual(sm, sv)

    # An output only becomes internal when its consumer module really
    # reads the connected input; a connection into an unused port would
    # otherwise leave the driver's value dangling.
    driven_outputs = {
        _qual(sm, sv)
        for (dm, dv), (sm, sv) in system.connections.items()
        if system.modules[dm].consumers_of(dv)
    }
    for inst, mod in system.modules.items():
        for v in mod.variables.values():
            q = _qual(inst, v.name)
            if q in alias:
                continue  # replaced by its driver
            is_input = v.is_input
            is_output = v.is_output and q not in driven_outputs
            # A driven output stays an ordinary (internal) variable.
            out.add_variable(
                Variable(q, v.width, is_input=is_input,
                         is_output=is_output)
            )
    for inst, mod in system.modules.items():
        for op in mod.operations.values():
            inputs = tuple(
                alias.get(_qual(inst, x), _qual(inst, x))
                for x in op.inputs
            )
            carried = frozenset(
                alias.get(_qual(inst, x), _qual(inst, x))
                for x in op.carried
            )
            out.add_operation(
                Operation(
                    _qual(inst, op.name), op.kind, inputs,
                    _qual(inst, op.output), carried=carried,
                    delay=op.delay,
                )
            )
    out.validate()
    return out


@dataclass(frozen=True)
class ModuleAccess:
    """A verified global test mode for one module instance."""

    module: str
    #: effective module input variable -> carrying system primary input
    input_carriers: Mapping[str, str]
    #: effective module input variable -> its flattened variable name
    flat_inputs: Mapping[str, str]
    #: system primary inputs pinned to constants
    pins: Mapping[str, int]
    #: (module output variable, system primary output observing it)
    observe: tuple[str, str]


def module_access(
    system: SystemDesign, instance: str, flat: CDFG | None = None
) -> ModuleAccess | None:
    """Extract and verify a global test mode for ``instance``.

    Every primary input of the module must be symbolically justifiable
    from system primary inputs, and at least one module output must
    propagate to a system primary output, simultaneously (shared pins
    must agree).  Returns None when the surrounding modules block
    access -- the situation [39] fixes by modification.
    """
    flat = flat if flat is not None else flatten(system)
    mod = system.modules[instance]
    pins: dict[str, int] = {}
    used: set[str] = set()
    carriers: dict[str, str] = {}
    flat_inputs: dict[str, str] = {}
    for v in mod.primary_inputs():
        if v.name == "tmode" or v.name.startswith("tin_"):
            continue  # test plumbing, not functional ports
        # A test-mode select may shadow the raw input: the module's
        # internal logic reads <v>_t, which is what needs justifying.
        effective = v.name
        vt = f"{v.name}_t"
        if vt in mod.variables:
            producer = mod.producer_of(vt)
            if producer is not None and producer.kind == "select":
                effective = vt
        q = _qual(instance, effective)
        # The qualified name may alias to a driver output.
        target = q if q in flat.variables else None
        if target is None:
            for (dm, dv), (sm, sv) in system.connections.items():
                if dm == instance and dv == effective:
                    target = _qual(sm, sv)
                    break
        if target is None:
            return None
        carrier = _justify(flat, target, pins, used)
        if carrier is None:
            return None
        carriers[effective] = carrier
        flat_inputs[effective] = target
    observe = None
    for v in mod.primary_outputs():
        q = _qual(instance, v.name)
        if q not in flat.variables:
            continue
        po = _propagate(flat, q, pins, used)
        if po is not None:
            observe = (v.name, po)
            break
    if observe is None:
        return None
    access = ModuleAccess(
        instance, carriers, dict(flat_inputs), dict(pins), observe
    )
    if _verify_access(system, flat, access):
        return access
    return None


def _verify_access(
    system: SystemDesign, flat: CDFG, access: ModuleAccess, trials: int = 3
) -> bool:
    """Execute the flat design and confirm the carriers really steer the
    module's effective inputs and the observed output really reaches
    the primary output unchanged."""
    import random

    rng = random.Random(11)
    mod = system.modules[access.module]
    for _ in range(trials):
        inputs = {v.name: 0 for v in flat.primary_inputs()}
        inputs.update(access.pins)
        injected: dict[str, int] = {}
        for mv, pi in access.input_carriers.items():
            width = mod.variable(mv).width
            injected[mv] = rng.randrange(1 << width)
            inputs[pi] = injected[mv]
        values = run_iteration(flat, inputs)
        for mv, flat_name in access.flat_inputs.items():
            if values[flat_name] != injected[mv]:
                return False
        out_var, po = access.observe
        if values[po] != values[_qual(access.module, out_var)]:
            return False
    return True


def modify_top_level(
    system: SystemDesign, instance: str
) -> tuple[SystemDesign, list[str]]:
    """AMBIANT-style fix: give a blocked module direct test access.

    The blocked module itself is modified (the survey's "the
    description of an individual module must be modified"): every
    connected input gets a test-mode select (loadable from a fresh
    test input, which flattening exposes as a system primary input)
    and every driven output gets an observe point.  Returns the
    modified system and the changed instances.
    """
    mod = system.modules[instance]
    connected_inputs = [
        dv for (dm, dv) in system.connections if dm == instance
    ]
    driven_outputs = [
        sv for (sm, sv) in system.connections.values() if sm == instance
    ]
    if not connected_inputs and not driven_outputs:
        return system, []
    modified = insert_test_statements(
        mod,
        control_vars=sorted(set(connected_inputs)),
        observe_vars=sorted(set(driven_outputs)),
    )
    new_modules = dict(system.modules)
    new_modules[instance] = modified
    new = SystemDesign(
        system.name + "+mod", new_modules, dict(system.connections)
    )
    return new, [instance]
