"""The survey's own exhibits: Table 1 and Figure 1.

* :mod:`repro.survey.table1` -- the "Operational Level of Testability
  Insertion" taxonomy of commercial EDA tools, as structured data plus
  a renderer that regenerates the table verbatim.
* :mod:`repro.survey.figure1` -- the worked assignment-loop example,
  reconstructed as executable data paths whose S-graphs exhibit exactly
  the loop structure the figure shows.
* :mod:`repro.survey.taxonomy` -- the survey's technique taxonomy
  (section -> technique -> citation -> module in this repository).
"""

from repro.survey.table1 import TABLE1, render_table1, InsertionLevel
from repro.survey.figure1 import (
    figure1_datapath,
    FIGURE1_REGISTERS_B,
    FIGURE1_REGISTERS_C,
)
from repro.survey.taxonomy import TAXONOMY, TechniqueEntry

__all__ = [
    "TABLE1",
    "render_table1",
    "InsertionLevel",
    "figure1_datapath",
    "FIGURE1_REGISTERS_B",
    "FIGURE1_REGISTERS_C",
    "TAXONOMY",
    "TechniqueEntry",
]
