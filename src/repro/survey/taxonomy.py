"""The survey's technique taxonomy as structured data.

One entry per surveyed technique, mapping the survey section and
citation to the module in this repository implementing it and to the
experiment (EXPERIMENTS.md id) that reproduces its headline claim.
Used by the documentation build and by ``examples/quickstart.py`` to
print a live inventory.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechniqueEntry:
    section: str
    technique: str
    citations: tuple[str, ...]
    module: str
    experiment: str


TAXONOMY: tuple[TechniqueEntry, ...] = (
    TechniqueEntry(
        "3.1", "Sequential ATPG cost measures (loops, depth)",
        ("Cheng & Agrawal 1990", "Lee & Reddy 1990"),
        "repro.sgraph.atpg_cost", "E-3.1",
    ),
    TechniqueEntry(
        "3.2", "I/O-register-maximising register assignment",
        ("Lee/Wolf/Jha/Acken ICCD'92",),
        "repro.scan.io_registers", "E-3.2",
    ),
    TechniqueEntry(
        "3.2", "Mobility-path scheduling",
        ("Lee/Wolf/Jha ICCAD'92",),
        "repro.hls.scheduling.mobility_path_schedule", "E-3.2b",
    ),
    TechniqueEntry(
        "3.3.1", "CDFG scan-variable selection",
        ("Potkonjak/Dey/Roy TCAD'95",),
        "repro.scan.scan_select", "E-3.3.1",
    ),
    TechniqueEntry(
        "3.3.1", "Boundary-variable scan selection",
        ("Lee/Jha/Wolf DAC'93",),
        "repro.scan.boundary", "E-3.3.1",
    ),
    TechniqueEntry(
        "3.3.2", "Loop-aware simultaneous scheduling/assignment",
        ("Potkonjak/Dey/Roy TCAD'95",),
        "repro.scan.simultaneous", "E-3.3.2",
    ),
    TechniqueEntry(
        "3.4", "Test-statement insertion",
        ("Chen/Karnik/Saab TCAD'94",),
        "repro.cdfg.transform.insert_test_statements", "E-3.4b",
    ),
    TechniqueEntry(
        "3.4", "Deflection-operation insertion",
        ("Dey & Potkonjak ITC'94",),
        "repro.cdfg.transform.insert_deflection_ops", "E-3.4",
    ),
    TechniqueEntry(
        "3.5", "Controller-based DFT (implication conflicts)",
        ("Dey/Gangaram/Potkonjak ICCAD'95",),
        "repro.controller_dft", "E-3.5",
    ),
    TechniqueEntry(
        "4.1", "RTL testability analysis & partial scan",
        ("Chickermane/Lee/Patel TCAD'94", "Steensma et al. ITC'91"),
        "repro.rtl.testability, repro.scan.rtl_partial_scan", "E-4.1",
    ),
    TechniqueEntry(
        "4.2", "k-level test-point insertion (non-scan DFT)",
        ("Dey & Potkonjak ICCAD'94",),
        "repro.rtl.test_points", "E-4.2",
    ),
    TechniqueEntry(
        "5.1", "BIST register assignment minimising self-adjacency",
        ("Avra ITC'91",),
        "repro.bist.self_adjacent", "E-5.1a",
    ),
    TechniqueEntry(
        "5.1", "Test function block (TFB) mapping",
        ("Papachristou/Chiu/Harmanani DAC'91",),
        "repro.bist.tfb", "E-5.1b",
    ),
    TechniqueEntry(
        "5.1", "Extended TFB (XTFB)",
        ("Harmanani & Papachristou ICCAD'93",),
        "repro.bist.xtfb", "E-5.1b",
    ),
    TechniqueEntry(
        "5.1", "TPGR/SR sharing with exact CBILBO conditions",
        ("Parulkar/Gupta/Breuer DAC'95",),
        "repro.bist.sharing", "E-5.1c",
    ),
    TechniqueEntry(
        "5.2", "Test-session minimisation",
        ("Harris & Orailoglu DAC'94",),
        "repro.bist.sessions", "E-5.2",
    ),
    TechniqueEntry(
        "5.3", "Test-behavior insertion (3-session BIST)",
        ("Papachristou/Chiu/Harmanani DAC'91", "Papachristou & Carletta ITC'95"),
        "repro.bist.test_behavior", "E-5.3",
    ),
    TechniqueEntry(
        "5.4", "Arithmetic BIST (subspace state coverage)",
        ("Mukherjee/Kassab/Rajski/Tyszer VTS'95",),
        "repro.bist.arithmetic", "E-5.4",
    ),
    TechniqueEntry(
        "6", "Hierarchical test generation via test environments",
        ("Bhatia & Jha EDTC'94", "Vishakantaiah et al. DAC'92/ITC'93"),
        "repro.hier", "E-6",
    ),
)
