"""Table 1 of the survey: Operational Level of Testability Insertion.

The table is a taxonomy of commercial test-synthesis offerings as of
1996, keyed by the design abstraction at which each tool inserts
testability structures.  We reproduce it verbatim as structured data
and map each insertion level onto the executable flow in this library
that demonstrates it (the "completeness of solution" criterion the
survey discusses in section 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class InsertionLevel(enum.Enum):
    """Design abstraction at which testability structures are inserted."""

    HDL = "HDL"
    TECH_INDEPENDENT = "technology-independent"
    TECH_DEPENDENT = "technology-dependent"


@dataclass(frozen=True)
class ToolEntry:
    """One row of Table 1."""

    name: str
    synthesis_base: str
    levels: tuple[InsertionLevel, ...]
    #: The flow in this repository exercising the same insertion level.
    repro_flow: str


TABLE1: tuple[ToolEntry, ...] = (
    ToolEntry(
        "Sunrise", "Viewlogic",
        (InsertionLevel.TECH_DEPENDENT,),
        "repro.scan.gate_level (post-synthesis S-graph MFVS)",
    ),
    ToolEntry(
        "Mentor", "Autologic II",
        (InsertionLevel.TECH_INDEPENDENT,),
        "repro.scan.rtl_partial_scan (bound data path, pre-mapping)",
    ),
    ToolEntry(
        "LogicVision", "Synopsys HDL & Design Compiler",
        (InsertionLevel.HDL,),
        "repro.cdfg.transform + repro.bist (behavioral BIST insertion)",
    ),
    ToolEntry(
        "IBM", "Booledozer",
        (InsertionLevel.TECH_INDEPENDENT, InsertionLevel.TECH_DEPENDENT),
        "repro.scan.gate_level / repro.scan.rtl_partial_scan",
    ),
    ToolEntry(
        "Synopsys", "Synopsys HDL & Design Compiler",
        (InsertionLevel.HDL, InsertionLevel.TECH_DEPENDENT),
        "repro.cdfg.transform + repro.scan (full flow)",
    ),
    ToolEntry(
        "Compass", "ASIC Synthesizer",
        (InsertionLevel.TECH_DEPENDENT,),
        "repro.scan.gate_level",
    ),
    ToolEntry(
        "AT&T", "Synovation",
        (InsertionLevel.HDL, InsertionLevel.TECH_DEPENDENT),
        "repro.scan.scan_select + repro.scan.gate_level",
    ),
)


def render_table1(include_repro_column: bool = False) -> str:
    """Regenerate Table 1 as fixed-width text."""
    header = f"{'Name':12s} {'Synthesis Base':34s} Testability Insertion Level"
    if include_repro_column:
        header += "  |  repro flow"
    lines = [header, "-" * len(header)]
    for row in TABLE1:
        levels = " or ".join(l.value for l in row.levels)
        line = f"{row.name:12s} {row.synthesis_base:34s} {levels}"
        if include_repro_column:
            line += f"  |  {row.repro_flow}"
        lines.append(line)
    return "\n".join(lines)
