"""Figure 1 of the survey, as executable data paths.

The figure shows the 5-addition CDFG of
:func:`repro.cdfg.suite.figure1` synthesized under a 3-control-step /
2-adder constraint with two different schedule/assignments:

* **(b)** ``{+1:(1,A1), +2:(2,A2), +3:(2,A1), +4:(3,A2), +5:(3,A1)}``
  with a register grouping that puts ``c`` and ``g`` in one register
  and ``e`` in another -- the data path contains the assignment loop
  the figure draws in bold (our R0 <-> R1 corresponds to the figure's
  RA1 -> RA2 -> RA1), so one register must be scanned.

* **(c)** ``{+1:(1,A1), +2:(2,A1), +3:(1,A2), +4:(2,A2), +5:(3,A1)}``
  keeps each chain on one adder; with chain-sharing register groups the
  data path "contains only two self-loops" and no register needs to be
  scanned, assuming self-loops can be tolerated.
"""

from __future__ import annotations

from repro.cdfg.suite import (
    FIGURE1_ASSIGNMENT_B,
    FIGURE1_ASSIGNMENT_C,
    figure1,
)
from repro.hls.allocation import Allocation
from repro.hls.binding import RegisterAssignment, bind_functional_units
from repro.hls.datapath import Datapath, build_datapath
from repro.hls.scheduling import Schedule

#: Register grouping for variant (b): c and g share R0, e lives in R1,
#: producing the RA1 -> RA2 -> RA1 assignment loop of the figure.
FIGURE1_REGISTERS_B: dict[str, int] = {
    "a": 0, "c": 0, "g": 0,
    "b": 1, "e": 1,
    "d": 2, "r": 2, "t": 2,
    "f": 3,
    "p": 4,
    "q": 5,
    "s": 6,
}

#: Register grouping for variant (c): each addition chain shares one
#: register, leaving only two self-loops.
FIGURE1_REGISTERS_C: dict[str, int] = {
    "a": 0, "c": 0, "e": 0, "g": 0,
    "b": 1,
    "d": 2,
    "f": 3,
    "p": 4, "r": 4, "t": 4,
    "q": 5,
    "s": 6,
}

_UNIT_OF = {"A1": "alu0", "A2": "alu1"}


def figure1_datapath(variant: str) -> Datapath:
    """Build the exact data path of Figure 1(b) or 1(c).

    ``variant`` is ``"b"`` or ``"c"``.
    """
    if variant == "b":
        assignment, grouping = FIGURE1_ASSIGNMENT_B, FIGURE1_REGISTERS_B
    elif variant == "c":
        assignment, grouping = FIGURE1_ASSIGNMENT_C, FIGURE1_REGISTERS_C
    else:
        raise ValueError(f"variant must be 'b' or 'c', got {variant!r}")
    cdfg = figure1()
    schedule = Schedule({op: step for op, (step, _a) in assignment.items()})
    alloc = Allocation({"alu": 2})
    prefer = {op: _UNIT_OF[a] for op, (_s, a) in assignment.items()}
    binding = bind_functional_units(cdfg, schedule, alloc, prefer=prefer)
    for op, unit in prefer.items():
        if binding.unit_of(op) != unit:
            raise AssertionError(
                f"figure1 binding drifted: {op} on {binding.unit_of(op)}"
            )
    registers = RegisterAssignment(grouping)
    return build_datapath(cdfg, schedule, binding, registers)
