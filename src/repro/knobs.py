"""Validated parsing for the repository's ``REPRO_*`` environment knobs.

Every tunable that used to be parsed ad hoc (``int(os.environ.get(...))``
deep inside a worker process, where a typo surfaced as a bare
``ValueError`` with no hint of which variable was wrong) goes through
this module instead.  Bad values raise :class:`KnobError` with a
one-line, actionable message naming the variable, the offending value,
and a valid example -- *before* any pool is spawned, so the error
arrives in the caller's process.

The :data:`KNOWN_KNOBS` registry doubles as documentation;
``python -m repro.flow knobs`` renders it.
"""

from __future__ import annotations

import os
from typing import Mapping, Sequence

__all__ = [
    "KnobError",
    "KNOWN_KNOBS",
    "env_int",
    "env_float",
    "env_str",
    "env_choice",
    "env_flag",
    "env_weights",
    "coerce_int",
    "coerce_float",
    "coerce_flag",
    "normalize_choice",
    "parse_weights",
]


class KnobError(ValueError):
    """A ``REPRO_*`` variable (or the matching argument) is invalid."""


#: name -> (kind, default, description).  Purely informational; the
#: accessors below do the actual validation.
KNOWN_KNOBS: dict[str, tuple[str, str, str]] = {
    "REPRO_FAULTSIM_BACKEND": (
        "choice: kernel|interp", "kernel",
        "fault-simulation engine (compiled numpy kernel or the "
        "reference interpreter)",
    ),
    "REPRO_FAULTSIM_SHARDS": (
        "int >= 1", "1",
        "worker processes for fault-parallel fault simulation and "
        "BIST fault attribution",
    ),
    "REPRO_ATPG_BACKEND": (
        "choice: event|reference", "event",
        "PODEM engine (event-driven incremental or the reference "
        "implementation)",
    ),
    "REPRO_ATPG_SHARDS": (
        "int >= 1", "1",
        "worker processes for the deterministic-ATPG residue searches",
    ),
    "REPRO_ATPG_PREDROP": (
        "int >= 0", "64",
        "random patterns fault-simulated before deterministic ATPG "
        "(0 disables the pre-drop stage)",
    ),
    "REPRO_FAULT_COLLAPSE": (
        "flag: 1|0", "1",
        "structural fault collapsing: simulate/target one "
        "representative per equivalence class and expand results at "
        "the reporting boundary (byte-identical, just faster)",
    ),
    "REPRO_ATPG_GUIDANCE": (
        "flag: 1|0", "1",
        "SCOAP-guided PODEM: hardest-first fault targeting and "
        "easiest-to-set backtrace candidate selection",
    ),
    "REPRO_SHARD_TRANSPORT": (
        "choice: shm|pickle", "shm (auto: pickle when shm unavailable)",
        "payload transport for fault-parallel shard dispatch: shared-"
        "memory segments with tiny pickled references, or classic "
        "whole-payload pickles through the pool pipe",
    ),
    "REPRO_KERNEL_BATCH": (
        "flag: 1|0", "1",
        "fused multi-design kernel execution: pack compatible "
        "fault-simulation jobs into one block-diagonal program "
        "(byte-identical to per-design serial runs, just faster on "
        "many small designs)",
    ),
    "REPRO_SERVE_BATCH_WINDOW": (
        "float >= 0 (seconds)", "0.0",
        "serve scheduler coalescing window: a dispatched batchable "
        "job waits this long for compatible queued jobs, then the "
        "group runs as one fused kernel invocation (0 disables "
        "coalescing)",
    ),
    "REPRO_WORKER_CACHE_SIZE": (
        "int >= 1", "8",
        "netlists and decoded shard payloads each worker process keeps "
        "cached by content hash (a warm worker compiles each design "
        "once per pool generation)",
    ),
    "REPRO_FLOWCACHE": (
        "path", ".flowcache",
        "flow artifact cache directory",
    ),
    "REPRO_CHAOS_PLAN": (
        "path", "(unset)",
        "JSON chaos plan for deterministic fault injection "
        "(tests only; unset in production)",
    ),
    "REPRO_BENCH_QUICK": (
        "flag", "(unset)",
        "benchmarks run reduced sweeps and skip scoreboard rewrites",
    ),
    "REPRO_SERVE_HOST": (
        "str", "127.0.0.1",
        "bind address for the testability service "
        "(python -m repro.flow serve)",
    ),
    "REPRO_SERVE_PORT": (
        "int 0..65535", "8351",
        "TCP port for the testability service (0 picks a free port)",
    ),
    "REPRO_SERVE_WORKERS": (
        "int >= 1", "2",
        "flow executions the server runs concurrently",
    ),
    "REPRO_SERVE_JOBS": (
        "int >= 1", "2",
        "worker processes in the server's warm pool (per-flow --jobs)",
    ),
    "REPRO_SERVE_QUEUE": (
        "int >= 1", "64",
        "admission control: queued executions before submissions are "
        "rejected with 429",
    ),
    "REPRO_SERVE_RETRY_AFTER": (
        "float > 0", "1.0",
        "Retry-After hint (seconds) sent with 429 rejections",
    ),
    "REPRO_SERVE_WEIGHTS": (
        "tenant=weight,...", "(unset)",
        "weighted-fair-queueing weights per tenant (unlisted tenants "
        "weigh 1)",
    ),
    "REPRO_SERVE_MEMCACHE": (
        "int >= 0", "256",
        "flow-cache entries the server keeps hot in memory "
        "(0 disables the memory layer)",
    ),
    "REPRO_FUZZ_TIMEOUT": (
        "float > 0 (seconds)", "30.0",
        "hard per-leg deadline in the fuzzing campaign: an oracle "
        "configuration exceeding it is classified as a hang finding",
    ),
    "REPRO_FUZZ_EXEC": (
        "choice: pool|inproc", "pool",
        "fuzzing oracle-leg execution: a sacrificial worker pool "
        "(hang/crash-safe) or in-process (faster, no hang protection)",
    ),
}


def coerce_int(
    value: object,
    name: str,
    minimum: int | None = None,
    maximum: int | None = None,
) -> int:
    """Validate an int-like value; ``name`` labels the error message.

    Out-of-range values are clamped (matching the historical
    ``max(1, shards)`` behaviour); unparseable ones raise
    :class:`KnobError`.
    """
    try:
        result = int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        example = minimum if minimum is not None else 1
        raise KnobError(
            f"{name}={value!r} is not an integer; "
            f"try e.g. {name}={example}"
        ) from None
    if minimum is not None:
        result = max(minimum, result)
    if maximum is not None:
        result = min(maximum, result)
    return result


def env_int(
    name: str,
    default: int,
    minimum: int | None = None,
    maximum: int | None = None,
) -> int:
    """Read an integer knob from the environment, validated."""
    raw = os.environ.get(name, "")
    if not raw.strip():
        return default
    return coerce_int(raw.strip(), name, minimum=minimum,
                      maximum=maximum)


def coerce_float(
    value: object,
    name: str,
    minimum: float | None = None,
    maximum: float | None = None,
) -> float:
    """Validate a float-like value; clamping mirrors :func:`coerce_int`."""
    try:
        result = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        example = minimum if minimum is not None else 1.0
        raise KnobError(
            f"{name}={value!r} is not a number; "
            f"try e.g. {name}={example}"
        ) from None
    if result != result:  # NaN never compares, so clamp can't fix it
        raise KnobError(f"{name}={value!r} is not a number")
    if minimum is not None:
        result = max(minimum, result)
    if maximum is not None:
        result = min(maximum, result)
    return result


def env_float(
    name: str,
    default: float,
    minimum: float | None = None,
    maximum: float | None = None,
) -> float:
    """Read a float knob from the environment, validated."""
    raw = os.environ.get(name, "")
    if not raw.strip():
        return default
    return coerce_float(raw.strip(), name, minimum=minimum,
                        maximum=maximum)


_FLAG_VALUES = {
    "1": True, "true": True, "on": True, "yes": True,
    "0": False, "false": False, "off": False, "no": False,
}


def coerce_flag(value: object, name: str) -> bool:
    """Validate a boolean-like value (1/0, true/false, on/off, yes/no)."""
    if isinstance(value, bool):
        return value
    try:
        result = _FLAG_VALUES[str(value).strip().lower()]
    except KeyError:
        raise KnobError(
            f"{name}={value!r} is not a flag; try {name}=1 or {name}=0"
        ) from None
    return result


def env_flag(name: str, default: bool) -> bool:
    """Read a boolean knob from the environment, validated."""
    raw = os.environ.get(name, "")
    if not raw.strip():
        return default
    return coerce_flag(raw.strip(), name)


def env_str(name: str, default: str) -> str:
    """Read a free-form string knob (empty/unset -> default)."""
    raw = os.environ.get(name, "")
    return raw.strip() or default


def parse_weights(raw: str, name: str) -> dict[str, float]:
    """Parse a ``tenant=weight,tenant=weight`` list into a dict.

    Weights must be positive numbers; anything else raises a one-line
    :class:`KnobError` naming the offending pair.
    """
    weights: dict[str, float] = {}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        tenant, sep, value = part.partition("=")
        tenant = tenant.strip()
        if not sep or not tenant:
            raise KnobError(
                f"{name}: {part!r} is not tenant=weight; "
                f"try e.g. {name}='alice=2,bob=1'"
            )
        weight = coerce_float(value.strip(), f"{name}[{tenant}]")
        if weight <= 0:
            raise KnobError(
                f"{name}[{tenant}]={weight!r} must be > 0"
            )
        weights[tenant] = weight
    return weights


def env_weights(
    name: str, default: Mapping[str, float] | None = None
) -> dict[str, float]:
    """Read a tenant-weight map knob from the environment, validated."""
    raw = os.environ.get(name, "")
    if not raw.strip():
        return dict(default or {})
    return parse_weights(raw, name)


def normalize_choice(
    value: str,
    name: str,
    canon: Mapping[str, Sequence[str]],
) -> str:
    """Map ``value`` (case-insensitive, with aliases) to its canonical
    choice, or raise a one-line :class:`KnobError`.

    ``canon`` maps each canonical choice to its accepted aliases (the
    canonical spelling itself is always accepted).
    """
    lowered = value.strip().lower()
    for canonical, aliases in canon.items():
        if lowered == canonical or lowered in aliases:
            return canonical
    options = "|".join(sorted(canon))
    raise KnobError(
        f"{name}={value!r} is not a valid choice; "
        f"expected one of {options}"
    )


def env_choice(
    name: str,
    default: str,
    canon: Mapping[str, Sequence[str]],
) -> str:
    """Read a choice knob from the environment, validated."""
    raw = os.environ.get(name, "")
    if not raw.strip():
        return default
    return normalize_choice(raw, name, canon)
