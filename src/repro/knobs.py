"""Validated parsing for the repository's ``REPRO_*`` environment knobs.

Every tunable that used to be parsed ad hoc (``int(os.environ.get(...))``
deep inside a worker process, where a typo surfaced as a bare
``ValueError`` with no hint of which variable was wrong) goes through
this module instead.  Bad values raise :class:`KnobError` with a
one-line, actionable message naming the variable, the offending value,
and a valid example -- *before* any pool is spawned, so the error
arrives in the caller's process.

The :data:`KNOWN_KNOBS` registry doubles as documentation;
``python -m repro.flow knobs`` renders it.
"""

from __future__ import annotations

import os
from typing import Mapping, Sequence

__all__ = [
    "KnobError",
    "KNOWN_KNOBS",
    "env_int",
    "env_choice",
    "coerce_int",
    "normalize_choice",
]


class KnobError(ValueError):
    """A ``REPRO_*`` variable (or the matching argument) is invalid."""


#: name -> (kind, default, description).  Purely informational; the
#: accessors below do the actual validation.
KNOWN_KNOBS: dict[str, tuple[str, str, str]] = {
    "REPRO_FAULTSIM_BACKEND": (
        "choice: kernel|interp", "kernel",
        "fault-simulation engine (compiled numpy kernel or the "
        "reference interpreter)",
    ),
    "REPRO_FAULTSIM_SHARDS": (
        "int >= 1", "1",
        "worker processes for fault-parallel fault simulation and "
        "BIST fault attribution",
    ),
    "REPRO_ATPG_BACKEND": (
        "choice: event|reference", "event",
        "PODEM engine (event-driven incremental or the reference "
        "implementation)",
    ),
    "REPRO_ATPG_SHARDS": (
        "int >= 1", "1",
        "worker processes for the deterministic-ATPG residue searches",
    ),
    "REPRO_ATPG_PREDROP": (
        "int >= 0", "64",
        "random patterns fault-simulated before deterministic ATPG "
        "(0 disables the pre-drop stage)",
    ),
    "REPRO_FLOWCACHE": (
        "path", ".flowcache",
        "flow artifact cache directory",
    ),
    "REPRO_CHAOS_PLAN": (
        "path", "(unset)",
        "JSON chaos plan for deterministic fault injection "
        "(tests only; unset in production)",
    ),
    "REPRO_BENCH_QUICK": (
        "flag", "(unset)",
        "benchmarks run reduced sweeps and skip scoreboard rewrites",
    ),
}


def coerce_int(
    value: object,
    name: str,
    minimum: int | None = None,
    maximum: int | None = None,
) -> int:
    """Validate an int-like value; ``name`` labels the error message.

    Out-of-range values are clamped (matching the historical
    ``max(1, shards)`` behaviour); unparseable ones raise
    :class:`KnobError`.
    """
    try:
        result = int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        example = minimum if minimum is not None else 1
        raise KnobError(
            f"{name}={value!r} is not an integer; "
            f"try e.g. {name}={example}"
        ) from None
    if minimum is not None:
        result = max(minimum, result)
    if maximum is not None:
        result = min(maximum, result)
    return result


def env_int(
    name: str,
    default: int,
    minimum: int | None = None,
    maximum: int | None = None,
) -> int:
    """Read an integer knob from the environment, validated."""
    raw = os.environ.get(name, "")
    if not raw.strip():
        return default
    return coerce_int(raw.strip(), name, minimum=minimum,
                      maximum=maximum)


def normalize_choice(
    value: str,
    name: str,
    canon: Mapping[str, Sequence[str]],
) -> str:
    """Map ``value`` (case-insensitive, with aliases) to its canonical
    choice, or raise a one-line :class:`KnobError`.

    ``canon`` maps each canonical choice to its accepted aliases (the
    canonical spelling itself is always accepted).
    """
    lowered = value.strip().lower()
    for canonical, aliases in canon.items():
        if lowered == canonical or lowered in aliases:
            return canonical
    options = "|".join(sorted(canon))
    raise KnobError(
        f"{name}={value!r} is not a valid choice; "
        f"expected one of {options}"
    )


def env_choice(
    name: str,
    default: str,
    canon: Mapping[str, Sequence[str]],
) -> str:
    """Read a choice knob from the environment, validated."""
    raw = os.environ.get(name, "")
    if not raw.strip():
        return default
    return normalize_choice(raw, name, canon)
