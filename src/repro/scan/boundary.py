"""Boundary-variable scan selection, after [24]
(Lee/Jha/Wolf, DAC'93).

"At first, a set of boundary variables, which determine the boundary of
loops, are selected to be assigned to the available scan registers,
thereby breaking the loops corresponding to each boundary variable.
Though the boundary variables cannot share the same register because
they are alive simultaneously, other intermediate variables of the CDFG
can share the registers with boundary variables.  To facilitate maximal
sharing, boundary variables with shorter lifetimes are preferred."

A *boundary variable* here is a variable carried across the iteration
boundary (read loop-carried by some consumer): every CDFG loop crosses
the boundary, so covering all loops with boundary variables is always
possible.
"""

from __future__ import annotations

from repro.cdfg.analysis import cdfg_loops, unbroken_loops
from repro.cdfg.graph import CDFG
from repro.cdfg.lifetimes import variable_lifetimes
from repro.hls.scheduling import Schedule, asap
from repro.scan.report import ScanPlan


def boundary_variables(cdfg: CDFG) -> set[str]:
    """Variables read loop-carried by at least one operation."""
    out: set[str] = set()
    for op in cdfg:
        out.update(op.carried)
    return out


def select_boundary_variables(
    cdfg: CDFG,
    schedule: Schedule | None = None,
    loop_bound: int = 2000,
) -> ScanPlan:
    """Greedy cover of the CDFG loops by boundary variables.

    Shorter-lived boundary variables are preferred (they leave more
    room for intermediate variables to share the scan registers); each
    selected boundary variable opens its own scan register, per [24].
    """
    if schedule is None:
        schedule = asap(cdfg)
    lifetimes = variable_lifetimes(cdfg, schedule.steps)
    loops = cdfg_loops(cdfg, bound=loop_bound)
    candidates = boundary_variables(cdfg)
    chosen: list[str] = []
    remaining = list(loops)
    while remaining:
        on_loops = {v for loop in remaining for v in loop} & candidates
        if not on_loops:
            # Defensive: a loop with no boundary variable cannot occur
            # in a valid CDFG (it would be an intra-iteration cycle).
            raise ValueError(
                f"loops without boundary variables: {remaining[:3]}"
            )
        best = max(
            sorted(on_loops),
            key=lambda v: (
                sum(1 for loop in remaining if v in loop),
                -lifetimes[v].length,
            ),
        )
        chosen.append(best)
        remaining = unbroken_loops(remaining, chosen)
    return ScanPlan(tuple((v,) for v in chosen))
