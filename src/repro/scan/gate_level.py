"""Conventional gate-level partial scan (the baseline of section 3.3).

"In conventional gate-level partial scan, the designer synthesizes the
module or chip without regard for testability, and then uses gate-level
partial-scan techniques to break loops enabling efficient sequential
ATPG."  Here: take an already-bound data path, build its S-graph,
select a minimum feedback vertex set, and scan those registers.
"""

from __future__ import annotations

from repro.hls.datapath import Datapath
from repro.hls.estimate import area_estimate
from repro.scan.report import ScanReport, scan_report
from repro.sgraph.build import build_sgraph
from repro.sgraph.atpg_cost import estimate_cost
from repro.sgraph.mfvs import minimum_feedback_vertex_set


def gate_level_partial_scan(datapath: Datapath) -> ScanReport:
    """Apply MFVS-based partial scan to ``datapath`` (mutates it).

    Every nontrivial S-graph cycle ends up broken by a scanned
    register; self-loops are tolerated, per gate-level practice.
    """
    g = build_sgraph(datapath)
    cost_before = estimate_cost(g, respect_scan=False)
    area_before = area_estimate(datapath)["total"]
    mfvs = minimum_feedback_vertex_set(g)
    datapath.mark_scan(*mfvs)
    return scan_report(area_before, datapath, "gate-level MFVS", cost_before)
