"""CDFG-level scan-variable selection, after [33]
(Potkonjak/Dey/Roy, IEEE TCAD 14(9), 1995).

Selects a set of scan variables such that every CDFG loop contains one,
using the two measures the survey names:

* **loop cutting effectiveness** -- how many still-unbroken loops the
  candidate lies on (normalised by loop length: cutting a short loop is
  worth more, short loops are the expensive ones for ATPG);
* **hardware sharing effectiveness** -- whether the candidate can share
  an already-committed scan register (lifetime-disjoint with some
  existing group), and how little lifetime it would add (short-lived
  variables keep future sharing open).

Unlike gate-level MFVS, where each selected vertex costs one scan FF,
selected scan variables can share scan registers -- the reason the
high-level technique needs fewer scan registers (section 3.3.1).
"""

from __future__ import annotations

from typing import Mapping

from repro.cdfg.analysis import cdfg_loops, unbroken_loops
from repro.cdfg.graph import CDFG
from repro.cdfg.lifetimes import Lifetime, variable_lifetimes
from repro.hls.binding import RegisterAssignment
from repro.hls.scheduling import Schedule, asap
from repro.scan.report import ScanPlan

#: Relative weight of the sharing term against the loop-cutting term.
SHARING_WEIGHT = 0.6


def select_scan_variables(
    cdfg: CDFG,
    schedule: Schedule | None = None,
    loop_bound: int = 2000,
) -> ScanPlan:
    """Choose scan variables breaking every CDFG loop, maximising sharing.

    ``schedule`` provides the lifetimes used for sharing decisions; when
    omitted, ASAP lifetimes are used as the estimate (selection happens
    before final scheduling in the [33] flow).
    """
    if schedule is None:
        schedule = asap(cdfg)
    lifetimes = variable_lifetimes(cdfg, schedule.steps)
    loops = cdfg_loops(cdfg, bound=loop_bound)
    groups: list[list[str]] = []
    chosen: set[str] = set()
    remaining = list(loops)
    while remaining:
        candidates = {v for loop in remaining for v in loop}
        best = max(
            sorted(candidates),
            key=lambda v: _gain(v, remaining, lifetimes, groups),
        )
        chosen.add(best)
        _place_in_group(best, lifetimes, groups)
        remaining = unbroken_loops(remaining, chosen)
    return ScanPlan(tuple(tuple(g) for g in groups))


def _gain(
    variable: str,
    remaining: list[list[str]],
    lifetimes: Mapping[str, Lifetime],
    groups: list[list[str]],
) -> float:
    cut = sum(
        1.0 / len(loop) for loop in remaining if variable in loop
    )
    lt = lifetimes[variable]
    shareable = any(
        all(not lt.overlaps(lifetimes[m]) for m in g) for g in groups
    )
    horizon = max((l.death for l in lifetimes.values()), default=1) or 1
    shortness = 1.0 - lt.length / (horizon + 1)
    sharing = (1.0 if shareable or not groups else 0.0) + shortness
    return cut + SHARING_WEIGHT * sharing


def _place_in_group(
    variable: str,
    lifetimes: Mapping[str, Lifetime],
    groups: list[list[str]],
) -> None:
    lt = lifetimes[variable]
    for g in groups:
        if all(not lt.overlaps(lifetimes[m]) for m in g):
            g.append(variable)
            return
    groups.append([variable])


def assign_registers_with_plan(
    cdfg: CDFG,
    schedule: Schedule,
    plan: ScanPlan,
) -> RegisterAssignment:
    """Register assignment honoring a scan plan's grouping.

    Each scan group is seeded into its own register; the remaining
    variables are packed left-edge into existing registers (scan or
    not) before new ones are opened, so the plan's scan registers also
    serve ordinary storage ("other intermediate variables of the CDFG
    can share the registers", section 3.3.1).
    """
    plan.verify(cdfg, schedule)
    lifetimes = variable_lifetimes(cdfg, schedule.steps)
    register_of: dict[str, int] = {}
    contents: list[list[str]] = []
    for group in plan.groups:
        idx = len(contents)
        contents.append(list(group))
        for v in group:
            register_of[v] = idx
    rest = sorted(
        (lt for v, lt in lifetimes.items() if v not in register_of),
        key=lambda lt: (lt.birth, lt.variable),
    )
    for lt in rest:
        placed = False
        for idx, regvars in enumerate(contents):
            if all(not lt.overlaps(lifetimes[m]) for m in regvars):
                regvars.append(lt.variable)
                register_of[lt.variable] = idx
                placed = True
                break
        if not placed:
            contents.append([lt.variable])
            register_of[lt.variable] = len(contents) - 1
    result = RegisterAssignment(register_of)
    result.verify(lifetimes)
    return result


def scan_register_names(
    plan: ScanPlan, assignment: RegisterAssignment
) -> list[str]:
    """Register names (``R<i>``) holding the plan's groups."""
    names = sorted(
        {f"R{assignment.register_of[v]}" for v in plan.variables}
    )
    return names
