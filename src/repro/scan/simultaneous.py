"""Simultaneous loop-aware scheduling and assignment, after [33]
(Potkonjak/Dey/Roy, IEEE TCAD 1995 -- survey section 3.3.2).

"At each iteration of the algorithm, from the operations that have not
yet been scheduled and assigned, an operation op_i with least slack is
selected.  The set of (module, control step) pairs to which the
operation can be assigned or scheduled are identified.  For each pair,
the cost in terms of testability, resource utilization and flexibility
... is computed.  Subsequently, a pair with the smallest cost is
selected.  A testability cost function is used to evaluate the costs
associated with each type of loop formed and the scan registers
necessary to break the loops."

The testability cost term prices module-level loops (which become
assignment loops in the data path) at ``LOOP_BASE ** length``;
self-loops are tolerated at a small weight, reproducing the Figure 1
outcome: chains stay on one module (self-loops) instead of ping-ponging
between modules (2-cycles).

Register assignment is then done cycle-aware: a variable placement that
would close a new nontrivial register-level cycle is avoided whenever a
cycle-free placement (possibly a fresh register) exists, reusing the
scan registers selected at the CDFG level to absorb unavoidable loops.
"""

from __future__ import annotations

import networkx as nx

from repro.cdfg.analysis import (
    alap_schedule,
    asap_schedule,
    cdfg_loops,
    critical_path_length,
)
from repro.cdfg.graph import CDFG
from repro.cdfg.lifetimes import variable_lifetimes
from repro.hls.allocation import Allocation, AllocationError
from repro.hls.binding import (
    FUBinding,
    RegisterAssignment,
    assign_registers_left_edge,
)
from repro.hls.datapath import Datapath, build_datapath
from repro.hls.scheduling import Schedule, list_schedule
from repro.scan.report import ScanPlan, minimize_scan_registers
from repro.scan.scan_select import select_scan_variables
from repro.sgraph.atpg_cost import LOOP_BASE, SELF_LOOP_WEIGHT
from repro.sgraph.build import build_sgraph, sgraph_without_scan
from repro.sgraph.mfvs import minimum_feedback_vertex_set

#: Cost weights: testability dominates, then utilization balance, then
#: flexibility, then earliness.  The utilization term mimics the
#: load-balancing every conventional binder applies; with
#: ``testability_weight=0`` it is what drives the ping-pong sharing that
#: creates the assignment loops of Figure 1(b).
W_TEST = 1.0
W_UTIL = 0.2
W_FLEX = 0.05
W_STEP = 0.01


def loop_aware_synthesis(
    cdfg: CDFG,
    allocation: Allocation,
    num_steps: int | None = None,
    testability_weight: float = W_TEST,
    max_latency_slack: int = 8,
    cycle_aware_registers: bool | None = None,
) -> tuple[Datapath, ScanPlan]:
    """Synthesize a data path minimising loop formation.

    Returns the data path (scan registers already marked per the CDFG
    scan plan) and the plan itself.  With ``testability_weight=0`` the
    algorithm degenerates to a cost-blind, load-balancing binder with
    plain left-edge register assignment -- the ablation knob for
    experiment E-3.3.2 (override via ``cycle_aware_registers``).
    """
    if cycle_aware_registers is None:
        cycle_aware_registers = testability_weight > 0
    allocation.validate_for(cdfg)
    if num_steps is None:
        num_steps = list_schedule(cdfg, allocation).length_with_delays(cdfg)
    last_error: Exception | None = None
    for latency in range(num_steps, num_steps + max_latency_slack + 1):
        try:
            schedule, binding = _schedule_and_bind(
                cdfg, allocation, latency, testability_weight
            )
            break
        except AllocationError as exc:
            last_error = exc
    else:
        raise AllocationError(
            f"loop-aware synthesis infeasible up to latency "
            f"{num_steps + max_latency_slack}: {last_error}"
        )
    # Scan-variable selection uses the lifetimes of the *final* schedule
    # so the plan's sharing groups are exact, not ASAP estimates.
    plan = (
        select_scan_variables(cdfg, schedule)
        if cdfg_loops(cdfg, bound=1)
        else ScanPlan(())
    )
    if cycle_aware_registers:
        regs = assign_registers_cycle_aware(cdfg, schedule, binding, plan)
    else:
        regs = assign_registers_left_edge(cdfg, schedule)
    dp = build_datapath(cdfg, schedule, binding, regs)
    scanned = sorted(
        {dp.register_of_variable(v).name for v in plan.variables}
    )
    dp.mark_scan(*scanned)
    ensure_loop_free(dp)
    minimize_scan_registers(dp)
    return dp, plan


def ensure_loop_free(datapath: Datapath) -> None:
    """Scan whatever else is needed to break residual assignment loops.

    The CDFG plan breaks behavioral loops; sharing can still close
    assignment loops the cycle-aware assigner could not avoid under the
    given constraints ("registers selected to break the CDFG loops can
    be reused" -- and when that fails, more scan is the fallback).
    """
    g = build_sgraph(datapath)
    residual = minimum_feedback_vertex_set(sgraph_without_scan(g))
    if residual:
        datapath.mark_scan(*residual)


def _schedule_and_bind(
    cdfg: CDFG,
    allocation: Allocation,
    num_steps: int,
    testability_weight: float,
) -> tuple[Schedule, FUBinding]:
    asap_s = asap_schedule(cdfg)
    cpl = critical_path_length(cdfg)
    if num_steps < cpl:
        raise AllocationError(f"latency {num_steps} < critical path {cpl}")
    alap_s = alap_schedule(cdfg, num_steps)
    dag = cdfg.op_graph(include_carried=False)

    placed_step: dict[str, int] = {}
    placed_unit: dict[str, str] = {}
    busy: set[tuple[str, int]] = set()
    module_graph = nx.DiGraph()
    for cls in {allocation.unit_class(k) for k in cdfg.kinds()}:
        module_graph.add_nodes_from(allocation.unit_names(cls))

    def window(o: str) -> tuple[int, int]:
        op = cdfg.operation(o)
        lo = asap_s[o]
        hi = alap_s[o]
        for pred in dag.predecessors(o):
            p = cdfg.operation(pred)
            plo = placed_step.get(pred, asap_s[pred])
            lo = max(lo, plo + p.delay)
        for succ in dag.successors(o):
            shi = placed_step.get(succ, alap_s[succ])
            hi = min(hi, shi - op.delay)
        # Latency is soft (see the dead-end fallback below): an op whose
        # predecessors slid past their ALAP keeps a valid window.
        return lo, max(hi, lo)

    def unit_free(unit: str, s: int, delay: int) -> bool:
        return all((unit, s + d) not in busy for d in range(delay))

    def new_module_edges(o: str, unit: str) -> set[tuple[str, str]]:
        op = cdfg.operation(o)
        edges: set[tuple[str, str]] = set()
        for v in op.inputs:
            p = cdfg.producer_of(v)
            if p is not None and p.name in placed_unit:
                edges.add((placed_unit[p.name], unit))
        for c in cdfg.consumers_of(op.output):
            if c.name in placed_unit:
                edges.add((unit, placed_unit[c.name]))
        return edges

    def testability_cost(edges: set[tuple[str, str]]) -> float:
        cost = 0.0
        for a, b in edges:
            if module_graph.has_edge(a, b):
                continue
            if a == b:
                cost += SELF_LOOP_WEIGHT
            elif nx.has_path(module_graph, b, a):
                length = nx.shortest_path_length(module_graph, b, a) + 1
                cost += LOOP_BASE ** length
        return cost

    unscheduled = set(cdfg.operations)
    while unscheduled:
        # Least-slack *ready* operation first (all predecessors placed);
        # readiness keeps producers from being squeezed by eagerly
        # placed consumers, ties broken by name for determinism.
        ready = [
            x
            for x in unscheduled
            if all(p in placed_step for p in dag.predecessors(x))
        ]
        o = min(ready, key=lambda x: (window(x)[1] - window(x)[0], x))
        op = cdfg.operation(o)
        lo, hi = window(o)
        if lo > hi:
            raise AllocationError(f"window collapsed for {o!r}")
        cls = allocation.unit_class(op.kind)
        best: tuple[float, int, str] | None = None
        same_class_windows = [
            window(x)
            for x in unscheduled
            if x != o and allocation.unit_class(cdfg.operation(x).kind) == cls
        ]
        ops_on_unit = {
            u: sum(1 for x in placed_unit.values() if x == u)
            for u in allocation.unit_names(cls)
        }
        for s in range(lo, hi + 1):
            flex = sum(1 for wlo, whi in same_class_windows if wlo <= s <= whi)
            for unit in allocation.unit_names(cls):
                if not unit_free(unit, s, op.delay):
                    continue
                cost = (
                    testability_weight
                    * testability_cost(new_module_edges(o, unit))
                    + W_UTIL * ops_on_unit[unit]
                    + W_FLEX * flex
                    + W_STEP * s
                )
                key = (cost, s, unit)
                if best is None or key < best:
                    best = key
        if best is None:
            # Greedy dead-end inside the latency window: slide past the
            # ALAP bound (latency becomes soft, exactly like the
            # resource-constrained list-schedule baseline).  Bounded:
            # some unit is free once every op's worth of steps.
            horizon = hi + 1 + sum(op2.delay for op2 in cdfg)
            for s in range(hi + 1, horizon):
                for unit in allocation.unit_names(cls):
                    if unit_free(unit, s, op.delay):
                        best = (float("inf"), s, unit)
                        break
                if best is not None:
                    break
        if best is None:
            raise AllocationError(
                f"no feasible (step, unit) pair for {o!r} in [{lo},{hi}]"
            )
        _, s, unit = best
        placed_step[o] = s
        placed_unit[o] = unit
        for d in range(op.delay):
            busy.add((unit, s + d))
        module_graph.add_edges_from(new_module_edges(o, unit))
        unscheduled.remove(o)

    schedule = Schedule(placed_step)
    schedule.verify(cdfg, allocation)
    binding = FUBinding(placed_unit)
    binding.verify(cdfg, schedule)
    return schedule, binding


def assign_registers_cycle_aware(
    cdfg: CDFG,
    schedule: Schedule,
    binding: FUBinding,
    plan: ScanPlan,
) -> RegisterAssignment:
    """Register assignment avoiding new register-level cycles.

    Scan groups from ``plan`` are seeded first (their registers absorb
    loops by design).  Each remaining variable is placed into the first
    register where (a) lifetimes stay disjoint and (b) no new
    nontrivial cycle through non-scan registers is closed; if no such
    register exists, a fresh register is opened; a placement closing a
    cycle is accepted only when every alternative also closes one.
    """
    lifetimes = variable_lifetimes(cdfg, schedule.steps)
    plan.verify(cdfg, schedule)

    contents: list[list[str]] = []
    register_of: dict[str, int] = {}
    scan_regs: set[int] = set()
    for group in plan.groups:
        idx = len(contents)
        contents.append(list(group))
        scan_regs.add(idx)
        for v in group:
            register_of[v] = idx

    reg_graph = nx.DiGraph()  # over register indices, scan regs excluded

    def placement_edges(v: str, idx: int) -> set[tuple[int, int]]:
        edges: set[tuple[int, int]] = set()
        p = cdfg.producer_of(v)
        if p is not None:
            for u in p.inputs:
                if u in register_of:
                    edges.add((register_of[u], idx))
        for c in cdfg.consumers_of(v):
            if c.output in register_of:
                edges.add((idx, register_of[c.output]))
        return edges

    def closes_cycle(v: str, idx: int) -> bool:
        if idx in scan_regs:
            return False
        edges = {
            (a, b)
            for a, b in placement_edges(v, idx)
            if a not in scan_regs and b not in scan_regs and a != b
        }
        ins = {a for a, b in edges if b == idx}
        outs = {b for a, b in edges if a == idx}
        def reaches(x: int, y: int) -> bool:
            return (
                x in reg_graph and y in reg_graph
                and nx.has_path(reg_graph, x, y)
            )

        # (a -> idx) plus an existing path idx -> a; or (idx -> b) plus
        # an existing path b -> idx.
        if any(reaches(idx, a) for a in ins):
            return True
        if any(reaches(b, idx) for b in outs):
            return True
        # A new out-edge chained to a new in-edge: idx -> b ... a -> idx.
        for b in outs:
            for a in ins:
                if a == b or reaches(b, a):
                    return True
        # Edges not incident to idx cannot occur (all placement edges
        # touch idx), so cycles among existing registers are impossible.
        return False

    def commit(v: str, idx: int) -> None:
        register_of[v] = idx
        if idx == len(contents):
            contents.append([v])
        else:
            contents[idx].append(v)
        for a, b in placement_edges(v, idx):
            if a in scan_regs or b in scan_regs or a == b:
                continue
            reg_graph.add_edge(a, b)

    # Edges induced by scan groups never enter reg_graph: the scan
    # register is directly accessible, so cycles through it are broken.
    order = sorted(
        (lt for v, lt in lifetimes.items() if v not in register_of),
        key=lambda lt: (lt.birth, lt.variable),
    )
    for lt in order:
        v = lt.variable
        compatible = [
            idx
            for idx, regvars in enumerate(contents)
            if all(not lt.overlaps(lifetimes[m]) for m in regvars)
        ]
        clean = [idx for idx in compatible if not closes_cycle(v, idx)]
        if clean:
            commit(v, clean[0])
        elif not closes_cycle(v, len(contents)):
            commit(v, len(contents))  # fresh register, cycle-free
        elif compatible:
            commit(v, compatible[0])  # unavoidable: accept cheapest
        else:
            commit(v, len(contents))
    result = RegisterAssignment(register_of)
    result.verify(lifetimes)
    return result
