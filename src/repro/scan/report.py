"""Scan plans and reporting.

A :class:`ScanPlan` is the output of the CDFG-level selection
algorithms: the chosen scan *variables*, grouped so that each group can
share one scan *register* ("the selected scan variables of a CDFG can
share scan registers" -- survey section 3.3.1; this sharing is exactly
why the high-level techniques beat gate-level MFVS on scan cost).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cdfg.graph import CDFG
from repro.cdfg.lifetimes import variable_lifetimes
from repro.hls.datapath import Datapath
from repro.hls.estimate import area_estimate
from repro.sgraph.build import build_sgraph, sgraph_without_scan
from repro.sgraph.atpg_cost import TestabilityCost, estimate_cost
from repro.sgraph.cycles import is_loop_free


@dataclass(frozen=True)
class ScanPlan:
    """Scan variables grouped by target scan register."""

    groups: tuple[tuple[str, ...], ...]

    @property
    def variables(self) -> set[str]:
        return {v for g in self.groups for v in g}

    @property
    def num_scan_registers(self) -> int:
        return len(self.groups)

    def verify(self, cdfg: CDFG, schedule) -> None:
        """Groups must be pairwise lifetime-disjoint under ``schedule``."""
        lifetimes = variable_lifetimes(cdfg, schedule.steps)
        for group in self.groups:
            for i, a in enumerate(group):
                for b in group[i + 1:]:
                    if lifetimes[a].overlaps(lifetimes[b]):
                        raise ValueError(
                            f"scan group {group}: {a!r} and {b!r} overlap"
                        )


@dataclass(frozen=True)
class ScanReport:
    """Before/after summary of a scan insertion on a data path."""

    design: str
    technique: str
    scan_registers: int
    scan_bits: int
    loop_free: bool
    cost_before: TestabilityCost
    cost_after: TestabilityCost
    area_before: float
    area_after: float

    @property
    def area_overhead_percent(self) -> float:
        return 100.0 * (self.area_after - self.area_before) / self.area_before

    def row(self) -> str:
        return (
            f"{self.design:14s} {self.technique:18s} "
            f"scan regs={self.scan_registers:2d} bits={self.scan_bits:3d} "
            f"loop-free={str(self.loop_free):5s} "
            f"score {self.cost_before.score:12.1f} -> {self.cost_after.score:10.1f} "
            f"area +{self.area_overhead_percent:4.1f}%"
        )


def apply_scan_plan(datapath: Datapath, plan: ScanPlan) -> list[str]:
    """Mark the registers holding the plan's variables as scan registers.

    Returns the scanned register names.  Note: when the register
    assignment did not honor the plan's grouping, more registers than
    ``plan.num_scan_registers`` may be scanned -- callers that want the
    minimum must use a plan-aware register assignment (see
    :func:`repro.scan.scan_select.assign_registers_with_plan`).
    """
    names: list[str] = []
    for var in sorted(plan.variables):
        reg = datapath.register_of_variable(var)
        if reg.name not in names:
            names.append(reg.name)
    datapath.mark_scan(*names)
    return names


def minimize_scan_registers(datapath: Datapath) -> list[str]:
    """Drop scan marks that are no longer needed for loop-freeness.

    Register sharing often merges several planned scan variables into
    one register, or breaks a loop as a side effect; this post-pass
    greedily unmarks scanned registers (widest first) while the S-graph
    stays loop-free, and returns the registers still scanned.
    """
    scanned = sorted(
        datapath.scan_registers(), key=lambda r: (-r.width, r.name)
    )
    g = build_sgraph(datapath)
    if not is_loop_free(sgraph_without_scan(g)):
        return [r.name for r in datapath.scan_registers()]
    for reg in scanned:
        reg.scan = False
        g = build_sgraph(datapath)
        if not is_loop_free(sgraph_without_scan(g)):
            reg.scan = True
    return [r.name for r in datapath.scan_registers()]


def scan_report(
    datapath_before_area: float,
    datapath: Datapath,
    technique: str,
    cost_before: TestabilityCost,
) -> ScanReport:
    """Assemble a :class:`ScanReport` from an already-marked data path."""
    g = build_sgraph(datapath)
    scanned = datapath.scan_registers()
    return ScanReport(
        design=datapath.name,
        technique=technique,
        scan_registers=len(scanned),
        scan_bits=sum(r.width for r in scanned),
        loop_free=is_loop_free(sgraph_without_scan(g)),
        cost_before=cost_before,
        cost_after=estimate_cost(g),
        area_before=datapath_before_area,
        area_after=area_estimate(datapath)["total"],
    )
