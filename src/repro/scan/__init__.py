"""Partial-scan synthesis for sequential ATPG (survey sections 3-4).

The package implements both sides of the comparison the survey draws:

* the conventional flow -- synthesize without regard for testability,
  then break S-graph loops with gate-level partial scan
  (:mod:`repro.scan.gate_level`);
* the high-level flows -- scan-variable selection on the CDFG
  (:mod:`repro.scan.scan_select`, after [33]), boundary-variable
  selection (:mod:`repro.scan.boundary`, after [24]), I/O-register
  maximizing assignment (:mod:`repro.scan.io_registers`, after [25]),
  loop-avoiding simultaneous scheduling and binding
  (:mod:`repro.scan.simultaneous`, after [33]), and RTL partial scan
  with transparent scan registers (:mod:`repro.scan.rtl_partial_scan`,
  after [35,37]).
"""

from repro.scan.report import ScanPlan, ScanReport, apply_scan_plan, scan_report
from repro.scan.gate_level import gate_level_partial_scan
from repro.scan.scan_select import select_scan_variables
from repro.scan.boundary import select_boundary_variables
from repro.scan.io_registers import assign_registers_io_first, io_register_stats
from repro.scan.simultaneous import loop_aware_synthesis
from repro.scan.rtl_partial_scan import rtl_partial_scan
from repro.scan.deflect import DeflectionResult, deflect_for_scan_sharing

__all__ = [
    "ScanPlan",
    "ScanReport",
    "apply_scan_plan",
    "scan_report",
    "gate_level_partial_scan",
    "select_scan_variables",
    "select_boundary_variables",
    "assign_registers_io_first",
    "io_register_stats",
    "loop_aware_synthesis",
    "rtl_partial_scan",
    "DeflectionResult",
    "deflect_for_scan_sharing",
]
