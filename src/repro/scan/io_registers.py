"""I/O-register-maximising register assignment, after [25]
(Lee/Wolf/Jha/Acken, ICCD'92 -- survey section 3.2).

"The approach assigns each primary output to an output register, and
then assigns as many intermediate variables as possible to the output
registers.  Next, it assigns each primary input to an input register,
and as many of the remaining intermediate variables as possible to the
input registers.  Then the input and output registers are merged if
possible to minimize the total number of registers.  Finally,
unassigned intermediate variables are assigned to extra registers."

Registers connected to primary I/O are directly controllable (input
registers) or observable (output registers), so maximising the number
of I/O registers -- and the share of variables living in them --
improves data-path testability at zero scan cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cdfg.graph import CDFG
from repro.cdfg.lifetimes import Lifetime, variable_lifetimes
from repro.hls.binding import RegisterAssignment
from repro.hls.datapath import Datapath
from repro.hls.scheduling import Schedule


def assign_registers_io_first(
    cdfg: CDFG, schedule: Schedule
) -> RegisterAssignment:
    """The four-phase I/O-first assignment of [25]."""
    lifetimes = variable_lifetimes(cdfg, schedule.steps)

    output_regs: list[list[str]] = [
        [v.name] for v in sorted(cdfg.primary_outputs(), key=lambda v: v.name)
    ]
    input_regs: list[list[str]] = [
        [v.name] for v in sorted(cdfg.primary_inputs(), key=lambda v: v.name)
    ]
    unassigned = sorted(
        (v.name for v in cdfg.intermediate_variables()),
        key=lambda v: (lifetimes[v].birth, v),
    )

    # Phase 1: intermediates into output registers.
    unassigned = _pack(unassigned, output_regs, lifetimes)
    # Phase 2: remaining intermediates into input registers.
    unassigned = _pack(unassigned, input_regs, lifetimes)
    # Phase 3: merge input registers into output registers when disjoint.
    merged_inputs: list[list[str]] = []
    for ireg in input_regs:
        target = _find_compatible(ireg, output_regs, lifetimes)
        if target is not None:
            target.extend(ireg)
        else:
            merged_inputs.append(ireg)
    # Phase 4: leftovers into extra registers (left-edge).
    extra_regs: list[list[str]] = []
    leftovers = _pack(unassigned, extra_regs, lifetimes, open_new=True)
    assert not leftovers

    register_of: dict[str, int] = {}
    for idx, reg in enumerate(output_regs + merged_inputs + extra_regs):
        for v in reg:
            register_of[v] = idx
    result = RegisterAssignment(register_of)
    result.verify(lifetimes)
    return result


def _pack(
    variables: list[str],
    registers: list[list[str]],
    lifetimes: Mapping[str, Lifetime],
    open_new: bool = False,
) -> list[str]:
    """First-fit variables into ``registers``; return the ones that did
    not fit (empty when ``open_new``)."""
    left: list[str] = []
    for v in variables:
        lt = lifetimes[v]
        for reg in registers:
            if all(not lt.overlaps(lifetimes[m]) for m in reg):
                reg.append(v)
                break
        else:
            if open_new:
                registers.append([v])
            else:
                left.append(v)
    return left


def _find_compatible(
    group: list[str],
    registers: list[list[str]],
    lifetimes: Mapping[str, Lifetime],
) -> list[str] | None:
    for reg in registers:
        if all(
            not lifetimes[a].overlaps(lifetimes[b])
            for a in group
            for b in reg
        ):
            return reg
    return None


@dataclass(frozen=True)
class IORegisterStats:
    """Testability-relevant register census of a data path."""

    total_registers: int
    io_registers: int
    input_registers: int
    output_registers: int
    variables_in_io_registers: int
    total_variables: int

    @property
    def io_fraction(self) -> float:
        return self.io_registers / self.total_registers


def io_register_stats(datapath: Datapath) -> IORegisterStats:
    """Count I/O registers and the variables living in them."""
    io_vars = 0
    for r in datapath.registers:
        if r.is_io_register:
            io_vars += len(r.variables)
    return IORegisterStats(
        total_registers=len(datapath.registers),
        io_registers=len(datapath.io_registers()),
        input_registers=len(datapath.input_registers()),
        output_registers=len(datapath.output_registers()),
        variables_in_io_registers=io_vars,
        total_variables=len(datapath.cdfg.variables),
    )
