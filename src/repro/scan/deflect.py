"""Deflection-driven scan-register minimisation, after [16]
(Dey & Potkonjak ITC'94 -- survey section 3.4).

"Deflection operations ... are added to eliminate resource sharing
bottlenecks, like overlapping lifetimes, such that more of the selected
scan variables can share the same scan registers, thereby reducing the
number of scan registers needed to break the CDFG loops."

The pass iterates: select scan variables, and for each selected
variable with several consumers try rerouting its *late* consumers
through a deflection operation -- the scan variable's lifetime then
ends at its earliest consumer, unlocking sharing with other groups.  A
transformation is kept only when it strictly reduces the scan-register
count (so area/performance are never hurt gratuitously, matching the
paper's "only when the performance and area of the design is not
adversely affected").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cdfg.graph import CDFG
from repro.cdfg.transform import deflect_variable
from repro.hls.scheduling import asap
from repro.scan.report import ScanPlan
from repro.scan.scan_select import select_scan_variables


@dataclass(frozen=True)
class DeflectionResult:
    """Outcome of the [16] pass."""

    original: CDFG
    transformed: CDFG
    plan_before: ScanPlan
    plan_after: ScanPlan
    deflections: int

    @property
    def scan_registers_saved(self) -> int:
        return (
            self.plan_before.num_scan_registers
            - self.plan_after.num_scan_registers
        )

    @property
    def extra_operations(self) -> int:
        return len(self.transformed) - len(self.original)


def deflect_for_scan_sharing(
    cdfg: CDFG, max_rounds: int = 6
) -> DeflectionResult:
    """Greedy improvement loop; see module docstring."""
    plan_before = select_scan_variables(cdfg)
    best = cdfg
    best_plan = plan_before
    deflections = 0
    for _ in range(max_rounds):
        candidate = _try_one_deflection(best, best_plan)
        if candidate is None:
            break
        best, best_plan = candidate
        deflections += 1
    return DeflectionResult(
        original=cdfg,
        transformed=best,
        plan_before=plan_before,
        plan_after=best_plan,
        deflections=deflections,
    )


def _try_one_deflection(
    cdfg: CDFG, plan: ScanPlan
) -> tuple[CDFG, ScanPlan] | None:
    """One strictly-improving deflection, or None."""
    schedule = asap(cdfg)
    for v in sorted(plan.variables):
        consumers = [
            c for c in cdfg.consumers_of(v) if v not in c.carried
        ]
        if len(consumers) < 2:
            continue
        consumers.sort(key=lambda c: (schedule.step_of(c.name), c.name))
        late = [c.name for c in consumers[1:]]
        try:
            transformed = deflect_variable(cdfg, v, late, kind="+")
        except Exception:
            continue
        new_plan = select_scan_variables(transformed)
        if new_plan.num_scan_registers < plan.num_scan_registers:
            return transformed, new_plan
    return None
