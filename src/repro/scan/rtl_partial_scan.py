"""RTL partial scan with transparent scan registers, after [35,37]
(survey section 4.1).

"Both register nodes as well as non-register nodes are considered for
breaking, with register nodes replaced by scan registers, and
transparent scan registers placed on non-register nodes, thereby
significantly reducing the number of scan registers needed."

The non-register nodes of a bound data path are the functional-unit
outputs: one transparent scan register on a unit's output breaks
*every* loop through that unit, which is cheaper than scanning each of
the registers those loops pass through.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.hls.datapath import Datapath
from repro.hls.estimate import AREA_MODEL, area_estimate


@dataclass(frozen=True)
class RTLScanResult:
    """Outcome of the mixed register/non-register loop breaking."""

    design: str
    scanned_registers: tuple[str, ...]
    transparent_units: tuple[str, ...]
    scan_bits: int
    loop_free: bool
    area_overhead: float

    @property
    def insertions(self) -> int:
        return len(self.scanned_registers) + len(self.transparent_units)


def _extended_graph(datapath: Datapath) -> nx.DiGraph:
    """Bipartite-ish graph over registers and unit-output nodes."""
    g = nx.DiGraph()
    for r in datapath.registers:
        g.add_node(r.name, kind="register", width=r.width, scan=r.scan)
    for u in datapath.units:
        g.add_node(u.name, kind="unit", width=u.width)
    for t in datapath.transfers:
        for src in set(t.source_registers):
            g.add_edge(src, t.unit)
        g.add_edge(t.unit, t.dest_register)
    g.remove_nodes_from(
        [r.name for r in datapath.registers if r.scan or r.transparent_scan]
    )
    return g


def _breakable_cycles(g: nx.DiGraph, bound: int = 4000) -> list[list[str]]:
    """Cycles with >= 2 register nodes (1-register cycles are the
    tolerated self-loops)."""
    out = []
    for cyc in nx.simple_cycles(g):
        regs = [n for n in cyc if g.nodes[n]["kind"] == "register"]
        if len(regs) >= 2:
            out.append(list(cyc))
        if len(out) >= bound:
            break
    return out


def rtl_partial_scan(datapath: Datapath) -> RTLScanResult:
    """Greedy weighted cover of the breakable cycles (mutates ``datapath``
    by marking scanned registers).

    Node weight is its scan-bit cost; units and registers compete, and
    the node covering the most cycles per bit wins each round.
    """
    area_before = area_estimate(datapath)["total"]
    g = _extended_graph(datapath)
    cycles = _breakable_cycles(g)
    chosen_regs: list[str] = []
    chosen_units: list[str] = []
    remaining = list(cycles)
    while remaining:
        counts: dict[str, int] = {}
        for cyc in remaining:
            for n in cyc:
                counts[n] = counts.get(n, 0) + 1
        best = max(
            sorted(counts),
            key=lambda n: counts[n] / g.nodes[n]["width"],
        )
        if g.nodes[best]["kind"] == "register":
            chosen_regs.append(best)
        else:
            chosen_units.append(best)
        remaining = [c for c in remaining if best not in c]
    datapath.mark_scan(*chosen_regs)
    # Transparent scan registers on unit outputs are not Datapath
    # registers; they are carried in the result and priced separately.
    scan_bits = sum(g.nodes[r]["width"] for r in chosen_regs) + sum(
        g.nodes[u]["width"] for u in chosen_units
    )
    g2 = _extended_graph(datapath)
    g2.remove_nodes_from(chosen_units)
    loop_free = not _breakable_cycles(g2, bound=1)
    area_after = area_estimate(datapath)["total"] + sum(
        AREA_MODEL["transparent_scan_bit"] * g.nodes[u]["width"]
        for u in chosen_units
    )
    return RTLScanResult(
        design=datapath.name,
        scanned_registers=tuple(chosen_regs),
        transparent_units=tuple(chosen_units),
        scan_bits=scan_bits,
        loop_free=loop_free,
        area_overhead=area_after - area_before,
    )
