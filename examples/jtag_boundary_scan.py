"""IEEE 1149.1 boundary scan around a synthesized data path.

Section 4.2 of the survey: "Testability structures, such as an IEEE
1149.1 boundary scan cell, can be directly synthesized."  This example
wraps the gate-level figure1 data path (control nets exposed as pins)
in a TAP + boundary register and drives it purely through the 4-wire
interface: IDCODE readout, BYPASS, pin SAMPLE, and an INTEST vector
that exercises an adder through the boundary register.

Run:  python examples/jtag_boundary_scan.py
"""

from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro import hls
from repro.gatelevel import expand_datapath
from repro.jtag import Instruction, JTAGWrapper

WIDTH = 3


def main() -> None:
    cdfg = suite.figure1(width=WIDTH)
    alloc = hls.Allocation({"alu": 2})
    sched = hls.list_schedule(cdfg, alloc)
    fub = hls.bind_functional_units(cdfg, sched, alloc)
    regs = hls.assign_registers_left_edge(cdfg, sched)
    dp = hls.build_datapath(cdfg, sched, fub, regs)
    core, control = expand_datapath(dp)
    print(f"core: {len(core)} gates, {len(core.inputs())} pins in, "
          f"{len(core.outputs)} pins out")

    tap = JTAGWrapper(core, idcode=0x1149_0001)
    print(f"boundary register length: {len(tap.boundary)} cells")

    print(f"\nIDCODE read through TDO: 0x{tap.read_idcode():08x}")

    tap.load_instruction(Instruction.BYPASS)
    pattern = [1, 0, 1, 1, 0]
    echoed = tap.shift_dr_bits(pattern)
    print(f"BYPASS: shifted {pattern} -> {echoed} (one-bit delay)")

    # SAMPLE the pins while the chip 'operates' with a=5, b=2 loading
    a, b = 5, 2
    pins = {pi: 0 for pi in core.inputs()}
    for i in range(WIDTH):
        pins[f"pi_a_b{i}"] = (a >> i) & 1
        pins[f"pi_b_b{i}"] = (b >> i) & 1
    snap = tap.sample_pins(pins)
    got_a = sum(snap[f"pi_a_b{i}"] << i for i in range(WIDTH))
    print(f"SAMPLE: captured pi_a = {got_a} (applied {a})")

    # INTEST: drive R0 <- a through the +1 adder purely via JTAG.
    # Assert the load/select controls for one captured cycle.
    vector = dict(pins)
    r0 = dp.register_of_variable("a").name
    vector[f"{r0}_load"] = 1
    outputs = tap.run_intest(vector, run_cycles=1)
    print(f"INTEST: ran 1 core clock with {r0}_load=1; "
          f"{sum(outputs.values())} output bits captured")
    print("TAP state machine, boundary cells, and instructions all "
          "exercised through TMS/TDI only.")


if __name__ == "__main__":
    main()
