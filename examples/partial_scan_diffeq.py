"""Partial scan on the looped differential-equation solver.

Compares four ways to make the looped HAL diffeq testable and then
*proves* the payoff at the gate level with the bundled ATPG:

* no DFT at all,
* conventional gate-level MFVS partial scan,
* boundary-variable selection [24],
* the full loop-aware flow [33],

reporting scan bits, area overhead, and sequential-ATPG detections on
a fault sample of the expanded data path.

Run:  python examples/partial_scan_diffeq.py
"""

from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro import hls, scan, sgraph
from repro.gatelevel import all_faults, expand_datapath
from repro.gatelevel.seq_atpg import sequential_atpg
from repro.hls.estimate import area_estimate
from repro.scan.report import minimize_scan_registers
from repro.scan.scan_select import assign_registers_with_plan
from repro.scan.simultaneous import ensure_loop_free

WIDTH = 3       # keep gate-level ATPG snappy
SAMPLE = 12
FRAMES = 4
BACKTRACKS = 60


def atpg_detections(dp):
    nl, _ = expand_datapath(dp)
    faults = [f for f in all_faults(nl) if f.net.startswith("R")][:SAMPLE]
    hits = aborts = 0
    for f in faults:
        res = sequential_atpg(nl, f, max_frames=FRAMES,
                              backtrack_limit=BACKTRACKS)
        hits += res.detected
        aborts += res.aborted
    return hits, aborts, len(faults)


def conventional(cdfg, latency):
    alloc = hls.allocate_for_latency(cdfg, latency)
    sched = hls.list_schedule(cdfg, alloc)
    fub = hls.bind_functional_units(cdfg, sched, alloc)
    regs = hls.assign_registers_left_edge(cdfg, sched)
    return hls.build_datapath(cdfg, sched, fub, regs), alloc


def main() -> None:
    cdfg = suite.diffeq(loop=True, width=WIDTH)
    latency = int(1.5 * critical_path_length(cdfg))
    rows = []

    dp, alloc = conventional(cdfg, latency)
    base_area = area_estimate(dp)["total"]
    rows.append(("no DFT", dp, base_area))

    dp_mfvs, _ = conventional(cdfg, latency)
    scan.gate_level_partial_scan(dp_mfvs)
    rows.append(("gate-level MFVS", dp_mfvs, base_area))

    alloc2 = hls.allocate_for_latency(cdfg, latency)
    sched = hls.list_schedule(cdfg, alloc2)
    plan = scan.select_boundary_variables(cdfg, sched)
    ra = assign_registers_with_plan(cdfg, sched, plan)
    fub = hls.bind_functional_units(cdfg, sched, alloc2)
    dp_b = hls.build_datapath(cdfg, sched, fub, ra)
    dp_b.mark_scan(*sorted({
        dp_b.register_of_variable(v).name for v in plan.variables
    }))
    ensure_loop_free(dp_b)
    minimize_scan_registers(dp_b)
    rows.append(("boundary [24]", dp_b, base_area))

    dp_a, _ = scan.loop_aware_synthesis(cdfg, alloc, num_steps=latency)
    rows.append(("loop-aware [33]", dp_a, base_area))

    print(f"design: {cdfg.name} ({WIDTH}-bit), latency {latency}")
    print(f"{'flow':18s} {'scan bits':>9s} {'loop-free':>9s} "
          f"{'area +%':>8s} {'seq-ATPG det':>12s} {'aborts':>6s}")
    for tag, d, base in rows:
        g = sgraph.build_sgraph(d)
        bits = sum(r.width for r in d.scan_registers())
        lf = sgraph.is_loop_free(sgraph.sgraph_without_scan(g))
        area = area_estimate(d)["total"]
        det, ab, n = atpg_detections(d)
        print(f"{tag:18s} {bits:9d} {str(lf):>9s} "
              f"{100 * (area - base) / base:8.1f} {det:9d}/{n:<2d} "
              f"{ab:6d}")


if __name__ == "__main__":
    main()
