"""Hierarchical test generation with test environments (section 6).

Extracts a verified test environment for every functional unit of the
figure1 design, composes precomputed module tests into chip-level
tests, and checks each composed test by executing the behavior -- the
ATKET/CHEETA/Genesis flow [7,37,38] in miniature.  Where a unit has no
environment, the AMBIANT-style behavioral modification [39] adds one.

Run:  python examples/hierarchical_testgen.py
"""

from repro.cdfg import suite
from repro.cdfg.interpret import run_iteration
from repro import hls
from repro.hier import (
    environment_aware_binding,
    hierarchical_test_suite,
    modify_for_environments,
    module_test_environments,
)


def main() -> None:
    cdfg = suite.figure1()
    alloc = hls.Allocation({"alu": 2})
    sched = hls.list_schedule(cdfg, alloc)
    fub = environment_aware_binding(cdfg, sched, alloc)

    envs = module_test_environments(cdfg, fub)
    print("test environments per unit:")
    for unit, env in sorted(envs.items()):
        if env is None:
            print(f"  {unit}: NONE")
            continue
        print(f"  {unit}: via operation {env.operation}")
        print(f"    carriers: {env.carriers}  pins: {dict(env.pins)}  "
              f"observe at: {env.observe}")

    tests, uncovered = hierarchical_test_suite(
        cdfg, envs, width=8, budget_per_module=8
    )
    print(f"\ncomposed {len(tests)} chip-level tests "
          f"({len(uncovered)} units uncovered)")
    sample = tests[0]
    print(f"example test for {sample.unit} ({sample.operation}):")
    print(f"  apply PIs: { {k: v for k, v in sorted(sample.inputs.items())} }")
    print(f"  expect {sample.expected} at output {sample.observe!r}")
    values = run_iteration(cdfg, sample.inputs)
    print(f"  executed: output {sample.observe!r} = "
          f"{values[sample.observe]}  "
          f"({'OK' if values[sample.observe] == sample.expected else 'FAIL'})")

    # A design where some unit lacks an environment: tseng's multiplier.
    tseng = suite.tseng()
    alloc = hls.allocate_for_latency(tseng, 8)
    sched = hls.list_schedule(tseng, alloc)
    fub = hls.bind_functional_units(tseng, sched, alloc)
    envs = module_test_environments(tseng, fub)
    needy = [u for u, e in envs.items() if e is None]
    print(f"\ntseng units without environments: {needy}")
    modified, fixed = modify_for_environments(tseng, fub)
    print(f"after AMBIANT-style modification: +"
          f"{len(modified) - len(tseng)} operations for units {fixed}")

    # -- global test modes across a multi-module hierarchy [37,39] ---
    from repro.cdfg.builder import CDFGBuilder
    from repro.hier import (
        SystemDesign,
        flatten,
        modify_top_level,
        module_access,
    )

    def stage(name, transparent=True):
        b = CDFGBuilder(name)
        b.inputs("x", "k")
        b.outputs("y")
        if transparent:
            b.add("x", "k", "t1").add("t1", "k", "y")
        else:
            b.mul("x", "x", "t1").add("t1", "k", "y")
        return b.build()

    system = SystemDesign("pipe")
    system.add_module("pre", stage("pre", transparent=False))
    system.add_module("core", stage("core"))
    system.connect(("pre", "y"), ("core", "x"))
    print(f"\nhierarchical system: {sorted(system.modules)} "
          f"({len(flatten(system))} flattened operations)")
    print(f"core global test mode before modification: "
          f"{module_access(system, 'core')}")
    fixed_system, changed = modify_top_level(system, "core")
    acc = module_access(fixed_system, "core")
    print(f"after modifying {changed}: carriers {dict(acc.input_carriers)}"
          f", observe at {acc.observe[1]!r}")


if __name__ == "__main__":
    main()
