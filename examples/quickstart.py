"""Quickstart: synthesize a behavior and make it testable.

Walks the core flow end to end on the IIR biquad filter:

1. build the behavioral description (CDFG),
2. schedule and bind it into a data path,
3. inspect the S-graph (the survey's section-3.1 testability lens),
4. run the loop-aware testability synthesis of [33],
5. compare scan cost against conventional gate-level partial scan.

Run:  python examples/quickstart.py
"""

from repro.cdfg import suite
from repro.cdfg.analysis import cdfg_loops, critical_path_length
from repro import hls, scan, sgraph
from repro.survey import TAXONOMY


def main() -> None:
    cdfg = suite.iir_biquad(2)
    print(f"behavior: {cdfg.name} with {len(cdfg)} operations, "
          f"{len(cdfg.variables)} variables")
    loops = cdfg_loops(cdfg, bound=100)
    print(f"CDFG loops (behavioral feedback): {len(loops)}, "
          f"shortest {min(len(l) for l in loops)} variables")

    latency = int(1.5 * critical_path_length(cdfg))
    alloc = hls.allocate_for_latency(cdfg, latency)
    print(f"\nallocation for latency {latency}: "
          f"{dict(alloc.units)}")

    # --- conventional flow + gate-level partial scan -----------------
    sched = hls.list_schedule(cdfg, alloc)
    fub = hls.bind_functional_units(cdfg, sched, alloc)
    regs = hls.assign_registers_left_edge(cdfg, sched)
    dp = hls.build_datapath(cdfg, sched, fub, regs)
    g = sgraph.build_sgraph(dp)
    print(f"\nconventional data path: {dp!r}")
    print(f"S-graph before DFT: {sgraph.estimate_cost(g)}")
    report = scan.gate_level_partial_scan(dp)
    print(f"gate-level partial scan: {report.row()}")

    # --- the testability-driven flow of [33] -------------------------
    dp2, plan = scan.loop_aware_synthesis(cdfg, alloc, num_steps=latency)
    g2 = sgraph.build_sgraph(dp2)
    bits = sum(r.width for r in dp2.scan_registers())
    print(f"\nloop-aware synthesis [33]: scan plan groups = "
          f"{[list(grp) for grp in plan.groups]}")
    print(f"scan registers {len(dp2.scan_registers())} "
          f"({bits} bits) vs {report.scan_bits} bits conventional")
    print(f"S-graph after: {sgraph.estimate_cost(g2)}")
    assert sgraph.is_loop_free(sgraph.sgraph_without_scan(g2))

    # --- the survey's technique inventory -----------------------------
    print("\nimplemented survey techniques:")
    for entry in TAXONOMY:
        print(f"  [section {entry.section:6s}] {entry.technique:55s} "
              f"-> {entry.module}")


if __name__ == "__main__":
    main()
