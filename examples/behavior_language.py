"""The tiny behavioral language end to end.

Writes a small filter in the single-assignment language of
:func:`repro.cdfg.builder.parse_behavior` (the library's lightweight
stand-in for the Verilog/VHDL/C front ends the survey's section 2
discusses), then pushes it through scheduling, binding, scan insertion,
and finally exports the result as structural Verilog and Graphviz DOT.

Run:  python examples/behavior_language.py
"""

from repro.cdfg.builder import parse_behavior
from repro.cdfg.analysis import cdfg_loops, critical_path_length
from repro.cdfg.dot import datapath_to_dot
from repro import hls, scan, sgraph
from repro.gatelevel import datapath_to_verilog

SOURCE = """
# first-order low-pass with feedback state s:
#   s' = x*k + s*g ;  y = s' + x
input x k g
output y
p1 = x * k
p2 = g @* s          # '@' marks the right operand loop-carried
s  = p1 + p2
y  = s + x
"""


def main() -> None:
    cdfg = parse_behavior(SOURCE, name="lowpass")
    print(f"parsed: {cdfg!r}")
    print(f"critical path {critical_path_length(cdfg)} steps; "
          f"loops {len(cdfg_loops(cdfg, bound=10))}")

    alloc = hls.allocate_for_latency(cdfg, 8)
    dp, plan = scan.loop_aware_synthesis(cdfg, alloc, num_steps=8)
    g = sgraph.build_sgraph(dp)
    print(f"data path: {dp!r}")
    print(f"scan plan: {[list(grp) for grp in plan.groups]} -> "
          f"registers {[r.name for r in dp.scan_registers()]}")
    print(f"S-graph after scan: {sgraph.estimate_cost(g)}")

    verilog = datapath_to_verilog(dp)
    dot = datapath_to_dot(dp)
    print(f"\nVerilog export: {len(verilog.splitlines())} lines; "
          f"first ports:")
    for line in verilog.splitlines()[1:8]:
        print(f"  {line.strip()}")
    print(f"\nDOT export: {len(dot.splitlines())} lines "
          f"(render with `dot -Tpng`)")


if __name__ == "__main__":
    main()
