"""Behavioral BIST synthesis on the elliptic wave filter.

Walks section 5 of the survey on one design:

* test-role assignment with TPGR/SR sharing and the exact CBILBO
  conditions [32],
* test-session scheduling, per-module vs path-based [20],
* the TFB/XTFB architecture ladder [31,19],
* an actual pseudorandom BIST run (LFSR stimuli, MISR signature) on
  the expanded gate-level data path with a coverage curve.

Run:  python examples/bist_ewf.py
"""

from repro.cdfg import suite
from repro.cdfg.analysis import critical_path_length
from repro import bist, hls
from repro.bist.sessions import path_based_sessions
from repro.bist.registers import MISR
from repro.gatelevel import all_faults, expand_datapath
from repro.gatelevel.random_patterns import bist_coverage_curve


def main() -> None:
    cdfg = suite.ewf()
    latency = int(1.6 * critical_path_length(cdfg))
    alloc = hls.allocate_for_latency(cdfg, latency)
    sched = hls.list_schedule(cdfg, alloc)
    fub = hls.bind_functional_units(cdfg, sched, alloc)
    ra = bist.sharing_register_assignment(cdfg, sched, fub)
    dp = hls.build_datapath(cdfg, sched, fub, ra)
    print(f"data path: {dp!r}")

    cfg, envs = bist.assign_test_roles(dp)
    print("\ntest roles ([32] sharing):")
    for reg in dp.registers:
        if reg.test_role:
            print(f"  {reg.name}: {reg.test_role}")
    print(f"converted registers: {cfg.converted_registers} / "
          f"{len(dp.registers)}; CBILBOs: "
          f"{cfg.count(bist.TestRole.CBILBO)}")

    print("\nsessions:")
    print(f"  per-module conflicts: {bist.schedule_sessions(envs)}")
    print(f"  path-based [20]:      {path_based_sessions(dp)}")

    s = hls.asap(cdfg)
    tfb = bist.map_to_tfbs(cdfg, s)
    x1 = bist.map_to_xtfbs(cdfg, s, sr_depth=1)
    x2 = bist.map_to_xtfbs(cdfg, s, sr_depth=2)
    print("\narchitecture ladder (test-area overhead, gate equivalents):")
    print(f"  TFB  [31]: {tfb.num_tfbs:2d} blocks, "
          f"overhead {tfb.test_overhead(cdfg):6.0f}")
    print(f"  XTFB [19] (d=1): {x1.num_xtfbs:2d} blocks, {x1.num_srs} SRs, "
          f"overhead {x1.test_overhead(cdfg):6.0f}")
    print(f"  XTFB [19] (d=2): {x2.num_xtfbs:2d} blocks, {x2.num_srs} SRs, "
          f"overhead {x2.test_overhead(cdfg):6.0f}")

    # gate-level pseudorandom BIST on a small-width variant
    small = suite.ewf(width=3)
    lat = int(1.6 * critical_path_length(small))
    alloc = hls.allocate_for_latency(small, lat)
    sched = hls.list_schedule(small, alloc)
    fub = hls.bind_functional_units(small, sched, alloc)
    dp3 = hls.build_datapath(
        small, sched, fub, hls.assign_registers_left_edge(small, sched)
    )
    from repro.scan import gate_level_partial_scan

    gate_level_partial_scan(dp3)  # TPGR/SR access modelled via scan
    nl, _ = expand_datapath(dp3)
    faults = all_faults(nl)[:300]
    print(f"\npseudorandom BIST run (3-bit EWF, {len(faults)} faults):")
    for n, cov in bist_coverage_curve(nl, checkpoints=(16, 64, 192),
                                      faults=faults):
        print(f"  {n:4d} patterns -> coverage {cov:.3f}")

    misr = MISR(16)
    for v in (3, 141, 29, 255, 17):
        misr.absorb(v)
    print(f"\nexample 16-bit MISR signature: 0x{misr.signature:04x}")

    # -- in-situ BIST: the registers themselves become the tester -----
    from repro.bist.sessions import schedule_sessions as sched_sessions
    from repro.gatelevel.bist_session import (
        bist_fault_coverage,
        build_bist_hardware,
        run_signature,
        session_configuration,
    )

    small2 = suite.iir_biquad(1, width=4)
    lat = int(1.6 * critical_path_length(small2))
    alloc = hls.allocate_for_latency(small2, lat)
    sched = hls.list_schedule(small2, alloc)
    fub = hls.bind_functional_units(small2, sched, alloc)
    dp4 = hls.build_datapath(
        small2, sched, fub, hls.assign_registers_left_edge(small2, sched)
    )
    _cfg2, envs2 = bist.assign_test_roles(dp4)
    hw = build_bist_hardware(dp4, envs2)
    sessions2 = sched_sessions(list(envs2))
    cfg0 = session_configuration(hw, sessions2[0])
    sig = run_signature(hw, cfg0, 32)
    print(f"\nin-situ BIST on 4-bit iir1: {len(sessions2)} sessions, "
          f"session-1 signature after 32 cycles: "
          f"{{ {', '.join(f'{r}=0x{v:x}' for r, v in sig.items())} }}")
    unit_faults = [
        f for f in all_faults(hw.netlist)
        if f.net.startswith(("fa_", "pp_"))
    ][:60]
    cov = bist_fault_coverage(hw, sessions=sessions2, cycles=48,
                              faults=unit_faults)
    print(f"logic-block fault coverage by signature compare: {cov:.3f}")


if __name__ == "__main__":
    main()
