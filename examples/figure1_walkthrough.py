"""Figure 1 of the survey, step by step.

Reconstructs both data paths of the paper's worked example -- the
assignment that creates a loop (b) and the one that avoids it (c) --
and shows the loop-aware binder of [33] rediscovering the loop-free
solution under the same 3-control-step / 2-adder constraint.

Run:  python examples/figure1_walkthrough.py
"""

from repro.cdfg.suite import (
    FIGURE1_ASSIGNMENT_B,
    FIGURE1_ASSIGNMENT_C,
    figure1,
)
from repro.hls import Allocation
from repro.scan import loop_aware_synthesis
from repro.sgraph import (
    build_sgraph,
    estimate_cost,
    minimum_feedback_vertex_set,
    nontrivial_cycles,
    self_loops,
)
from repro.survey import figure1_datapath


def describe(tag, dp):
    g = build_sgraph(dp)
    cycles = nontrivial_cycles(g)
    print(f"\n--- {tag} ---")
    for t in dp.transfers:
        srcs = ", ".join(t.source_registers)
        print(f"  step {t.step}: {t.dest_register} <= "
              f"{t.unit}({srcs})   [{t.operation}]")
    print(f"  nontrivial cycles: {cycles or 'none'}")
    print(f"  self-loops: {self_loops(g) or 'none'}")
    print(f"  scan registers needed: "
          f"{sorted(minimum_feedback_vertex_set(g)) or 'none'}")
    print(f"  ATPG cost estimate: {estimate_cost(g, respect_scan=False)}")


def main() -> None:
    cdfg = figure1()
    print("CDFG of Figure 1(a):")
    for op in cdfg:
        print(f"  {op.output} = {op.inputs[0]} {op.kind} {op.inputs[1]}"
              f"   ({op.name})")
    print(f"\nschedule/assignment (b): {FIGURE1_ASSIGNMENT_B}")
    print(f"schedule/assignment (c): {FIGURE1_ASSIGNMENT_C}")

    describe("Figure 1(b): assignment loop R0 <-> R1",
             figure1_datapath("b"))
    describe("Figure 1(c): self-loops only", figure1_datapath("c"))

    dp, _plan = loop_aware_synthesis(
        cdfg, Allocation({"alu": 2}), num_steps=3
    )
    describe("loop-aware binder of [33], same constraints", dp)

    print("\nconclusion: the (b) binding needs one scanned register; "
          "(c) and the [33] binder need none (self-loops tolerated).")


if __name__ == "__main__":
    main()
